/// \file zql_shell.cpp
/// \brief Interactive ZQL shell, now driving the serving layer — the
/// terminal stand-in for the zenvisage front end (§6.1) talking to a
/// QueryService instead of an embedded executor.
///
///   $ ./zql_shell [sales|census|airline|housing]
///
/// Enter a ZQL query (multiple lines); finish with a blank line to submit
/// it through the current session and wait. Lines starting with ':' are
/// commands:
///   :tables               list columns of the active dataset
///   :sql SELECT ...       run raw SQL against the backend
///   :opt LEVEL            set optimization (noopt|intraline|intratask|intertask)
///   :explain              explain the buffered query (then keep the buffer)
///   :session              show the current session
///   :session new          open (and switch to) a fresh session
///   :session end          end the current session and open a fresh one
///   :async                submit the buffered query without waiting
///   :wait N | :cancel N   wait on / cancel async query #N
///   :stats                service counters (cache hit rate, sessions, …)
///   :trace                toggle per-query tracing; traced queries print
///                         their span tree (where each millisecond went)
///   :trace show           re-print the last traced query's span tree
///   :trace chrome FILE    write the last trace as Chrome trace_event JSON
///                         (load in chrome://tracing for a flame view)
///   :metrics              metrics registry snapshot: latency histograms
///                         (p50/p90/p99/p999), counters, gauges
///   :slow                 the slow-query log (queries over ZV_SLOW_QUERY_MS)
///   :reload               regenerate the dataset — bumps its epoch, so
///                         every cached result for it is invalidated
///   :json                 enter wire mode: each subsequent line is one
///                         JSON QueryRequest (docs/api_reference.md), each
///                         reply one JSON QueryResponse — the same protocol
///                         a browser front end speaks. ":text" leaves.
///   :quit
///
/// Repeat a query to watch the serving layer work: the second run reports
/// "result cache HIT" and returns in microseconds; :reload and re-run to
/// watch epoch invalidation force a recompute. Wire mode drives the whole
/// typed path over stdin/stdout:
///
///   zql> :json
///   json> {"dataset":"sales","zql":"*f1 | 'year' | 'sales' | | | |","page":{"limit":1},"include_vega":true}
///   {"v":1,"outputs":[...],"stats":{...},"fingerprint":"..."}

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "api/service.h"
#include "common/metrics.h"
#include "common/strings.h"
#include "common/trace.h"
#include "server/query_service.h"
#include "viz/vega_emitter.h"
#include "workload/datasets.h"
#include "zql/explain.h"
#include "zql/parser.h"
#include "zql/plan.h"

namespace {

std::shared_ptr<zv::Table> LoadDataset(const std::string& name) {
  if (name == "census") {
    zv::CensusDataOptions opts;
    opts.num_rows = 50000;
    return zv::MakeCensusTable(opts);
  }
  if (name == "airline") {
    zv::AirlineDataOptions opts;
    opts.num_rows = 100000;
    return zv::MakeAirlineTable(opts);
  }
  if (name == "housing") {
    zv::HousingDataOptions opts;
    opts.num_rows = 60000;
    return zv::MakeHousingTable(opts);
  }
  zv::SalesDataOptions opts;
  opts.num_rows = 100000;
  opts.num_products = 20;
  return zv::MakeSalesTable(opts);
}

/// Canonical ZQL text on one line (slow-query log entries are multi-row).
std::string OneLine(std::string s) {
  for (char& c : s) {
    if (c == '\n') c = ' ';
  }
  return zv::Trim(s);
}

void PrintResult(const zv::zql::ZqlResult& result) {
  for (const auto& output : result.outputs) {
    std::printf("=== %s: %zu visualizations ===\n", output.name.c_str(),
                output.visuals.size());
    size_t shown = 0;
    for (const auto& viz : output.visuals) {
      if (++shown > 5) {
        std::printf("  ... and %zu more\n", output.visuals.size() - 5);
        break;
      }
      std::printf("%s\n", zv::ToAsciiChart(viz).c_str());
    }
  }
  const zv::zql::ZqlStats& st = result.stats;
  std::printf("(%llu SQL queries, %llu requests, exec %.1f ms, task "
              "processor %.1f ms, %llu contexts reused)\n",
              static_cast<unsigned long long>(st.sql_queries),
              static_cast<unsigned long long>(st.sql_requests), st.exec_ms,
              st.compute_ms,
              static_cast<unsigned long long>(st.contexts_reused));
}

/// Waits on one query handle and prints its outcome, including the serving
/// layer's cache verdict and end-to-end latency. A traced query also
/// prints its span tree and parks the trace in `last_trace` for
/// ":trace show" / ":trace chrome FILE".
void WaitAndPrint(zv::server::QueryHandle& handle,
                  std::shared_ptr<const zv::Trace>* last_trace) {
  const zv::Status status = handle.Wait();
  if (std::shared_ptr<const zv::Trace> trace = handle.trace()) {
    *last_trace = trace;
  }
  if (!status.ok()) {
    std::printf("error: %s\n", status.ToString().c_str());
    return;
  }
  const zv::zql::ZqlStats stats = handle.stats();
  if (stats.cache_hits > 0) {
    std::printf("[result cache HIT — %.3f ms]\n", stats.total_ms);
  } else {
    std::printf("[result cache MISS — computed in %.1f ms]\n",
                stats.total_ms);
  }
  PrintResult(*handle.result());
  if (std::shared_ptr<const zv::Trace> trace = handle.trace()) {
    std::printf("%s", zv::RenderTraceTree(trace->root()).c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string dataset = argc > 1 ? argv[1] : "sales";
  auto table = LoadDataset(dataset);
  const std::string table_name = table->name();

  zv::server::ServiceOptions service_opts;
  zv::server::QueryService service(service_opts);
  if (auto s = service.RegisterDataset(table); !s.ok()) {
    std::fprintf(stderr, "register failed: %s\n", s.ToString().c_str());
    return 1;
  }
  zv::server::SessionId session = std::move(service.CreateSession()).value();

  std::printf("zenvisage ZQL service shell — dataset '%s' (%zu rows), "
              "session %llu.\n",
              table_name.c_str(), table->num_rows(),
              static_cast<unsigned long long>(session));
  std::printf("Serving: %zu workers, %zu queue slots, %.0f MB cache. "
              "Repeat a query to hit the cache; :reload to invalidate.\n",
              service.max_inflight(), service.max_queue(),
              static_cast<double>(service.cache_bytes()) / (1 << 20));
  std::printf("Enter ZQL rows (Name | X | Y | Z | Constraints | Viz | "
              "Process), blank line to run, :quit to exit.\n\n");

  std::optional<zv::zql::OptLevel> opt_override;
  std::string buffer;
  std::string line;
  std::vector<zv::server::QueryHandle> async_handles;
  bool wire_mode = false;
  bool trace_on = false;
  std::shared_ptr<const zv::Trace> last_trace;

  auto submit_buffered = [&](bool async) {
    auto submitted =
        service.Submit(session, table_name, buffer, opt_override, trace_on);
    buffer.clear();
    if (!submitted.ok()) {
      std::printf("submit error: %s\n", submitted.status().ToString().c_str());
      return;
    }
    if (async) {
      async_handles.push_back(std::move(submitted).value());
      std::printf("async query #%zu submitted (\":wait %zu\" / \":cancel "
                  "%zu\")\n",
                  async_handles.size() - 1, async_handles.size() - 1,
                  async_handles.size() - 1);
      return;
    }
    zv::server::QueryHandle handle = std::move(submitted).value();
    WaitAndPrint(handle, &last_trace);
  };

  while (true) {
    std::printf(wire_mode ? "json> " : (buffer.empty() ? "zql> " : "...> "));
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    const std::string trimmed = zv::Trim(line);
    if (trimmed == ":quit" || trimmed == ":q") break;
    if (wire_mode) {
      if (trimmed == ":text") {
        wire_mode = false;
        std::printf("back to interactive mode\n");
        continue;
      }
      if (trimmed.empty()) continue;
      // One JSON QueryRequest per line; one JSON QueryResponse per line.
      std::printf("%s\n",
                  zv::api::HandleWireRequest(service, session, trimmed)
                      .c_str());
      continue;
    }
    if (trimmed == ":json") {
      wire_mode = true;
      std::printf(
          "wire mode (protocol v%d): one JSON request per line, e.g.\n"
          "  {\"dataset\":\"%s\",\"zql\":\"*f1 | 'year' | 'sales' | | | "
          "|\",\"page\":{\"limit\":1}}\n"
          "\":text\" returns to the interactive shell.\n",
          zv::api::kProtocolVersion, table_name.c_str());
      continue;
    }
    if (trimmed == ":tables") {
      for (const auto& col : table->schema().columns()) {
        std::printf("  %-20s %s\n", col.name.c_str(),
                    zv::ColumnTypeToString(col.type));
      }
      continue;
    }
    if (zv::StartsWith(trimmed, ":opt")) {
      const std::string level = zv::ToLower(zv::Trim(trimmed.substr(4)));
      if (level == "noopt") opt_override = zv::zql::OptLevel::kNoOpt;
      else if (level == "intraline")
        opt_override = zv::zql::OptLevel::kIntraLine;
      else if (level == "intratask")
        opt_override = zv::zql::OptLevel::kIntraTask;
      else opt_override = zv::zql::OptLevel::kInterTask;
      std::printf("optimization: %s\n",
                  zv::zql::OptLevelToString(*opt_override));
      continue;
    }
    if (zv::StartsWith(trimmed, ":sql")) {
      auto db = service.DatasetDatabase(table_name);
      if (!db.ok()) {
        std::printf("error: %s\n", db.status().ToString().c_str());
        continue;
      }
      auto rs = (*db)->ExecuteSql(trimmed.substr(4));
      if (!rs.ok()) std::printf("error: %s\n", rs.status().ToString().c_str());
      else std::printf("%s\n", rs->ToString().c_str());
      continue;
    }
    if (trimmed == ":explain") {
      if (buffer.empty()) {
        std::printf("nothing buffered — enter a query first\n");
        continue;
      }
      auto parsed = zv::zql::ParseQuery(buffer);
      if (!parsed.ok()) {
        std::printf("parse error: %s\n", parsed.status().ToString().c_str());
        continue;
      }
      auto plan = zv::zql::ExplainQuery(parsed.value());
      if (!plan.ok()) {
        std::printf("error: %s\n", plan.status().ToString().c_str());
        continue;
      }
      std::printf("%s", plan->ToString().c_str());
      // The physical plan the scheduler will actually run: the operator
      // tree under the effective optimization level, stage by stage.
      zv::zql::ZqlOptions plan_opts = service.zql_options();
      if (opt_override.has_value()) plan_opts.optimization = *opt_override;
      auto physical = zv::zql::BuildPhysicalPlan(parsed.value(), plan_opts);
      if (!physical.ok()) {
        std::printf("plan error: %s\n",
                    physical.status().ToString().c_str());
        continue;
      }
      // Chunk count makes the FetchOp fan-out annotation concrete
      // (chunks=K, shards=N) — same data the wire EXPLAIN supplies.
      size_t table_chunks = 0;
      if (auto db = service.DatasetDatabase(dataset); db.ok()) {
        if (auto map = (*db)->GetChunkMap(dataset); map.ok()) {
          table_chunks = map->num_chunks();
        }
      }
      std::printf("%s", physical->Render(parsed.value(), table_chunks).c_str());
      continue;  // buffer intentionally kept: tweak and run
    }
    if (trimmed == ":session") {
      std::printf("session %llu (%zu active on the service)\n",
                  static_cast<unsigned long long>(session),
                  service.ActiveSessions());
      continue;
    }
    if (trimmed == ":session new" || trimmed == ":session end") {
      if (trimmed == ":session end") {
        if (auto s = service.EndSession(session); !s.ok()) {
          std::printf("error: %s\n", s.ToString().c_str());
        }
      }
      session = std::move(service.CreateSession()).value();
      std::printf("now in session %llu\n",
                  static_cast<unsigned long long>(session));
      continue;
    }
    if (trimmed == ":async") {
      if (buffer.empty()) {
        std::printf("nothing buffered — enter a query first\n");
      } else {
        submit_buffered(/*async=*/true);
      }
      continue;
    }
    if (zv::StartsWith(trimmed, ":wait") || zv::StartsWith(trimmed, ":cancel")) {
      const bool is_cancel = zv::StartsWith(trimmed, ":cancel");
      const std::string arg = zv::Trim(trimmed.substr(is_cancel ? 7 : 5));
      char* end = nullptr;
      const long long parsed =
          arg.empty() ? -1 : std::strtoll(arg.c_str(), &end, 10);
      // Reject trailing garbage ("1x", "one") — atoll-style truncation
      // would silently act on query #0.
      if (arg.empty() || end == nullptr || *end != '\0' || parsed < 0 ||
          static_cast<size_t>(parsed) >= async_handles.size() ||
          !async_handles[static_cast<size_t>(parsed)].valid()) {
        std::printf("no such async query (0..%zu)\n",
                    async_handles.empty() ? 0 : async_handles.size() - 1);
        continue;
      }
      const size_t idx = static_cast<size_t>(parsed);
      if (is_cancel) {
        async_handles[idx].Cancel();
        std::printf("cancel requested; status: %s\n",
                    async_handles[idx].Wait().ToString().c_str());
      } else {
        WaitAndPrint(async_handles[idx], &last_trace);
      }
      continue;
    }
    if (zv::StartsWith(trimmed, ":trace")) {
      const std::string arg = zv::Trim(trimmed.substr(6));
      if (arg.empty()) {
        trace_on = !trace_on;
        std::printf("tracing %s — %s\n", trace_on ? "ON" : "OFF",
                    trace_on ? "queries now return a span tree"
                             : "queries run untraced");
      } else if (arg == "show") {
        if (last_trace == nullptr) {
          std::printf("no trace yet — run a query with tracing on\n");
        } else {
          std::printf("%s", zv::RenderTraceTree(last_trace->root()).c_str());
        }
      } else if (zv::StartsWith(arg, "chrome")) {
        const std::string path = zv::Trim(arg.substr(6));
        if (last_trace == nullptr) {
          std::printf("no trace yet — run a query with tracing on\n");
        } else if (path.empty()) {
          std::printf("usage: :trace chrome FILE\n");
        } else if (std::FILE* f = std::fopen(path.c_str(), "w")) {
          const std::string chrome = zv::ToChromeTrace(last_trace->root());
          std::fwrite(chrome.data(), 1, chrome.size(), f);
          std::fclose(f);
          std::printf("wrote %s — open chrome://tracing and load it\n",
                      path.c_str());
        } else {
          std::printf("cannot open %s for writing\n", path.c_str());
        }
      } else {
        std::printf("usage: :trace | :trace show | :trace chrome FILE\n");
      }
      continue;
    }
    if (trimmed == ":metrics") {
      std::printf("%s", service.metrics()->Snapshot().ToText().c_str());
      continue;
    }
    if (trimmed == ":slow") {
      const auto slow = service.SlowQueries();
      if (slow.empty()) {
        std::printf("no slow queries (threshold: %.0f ms; ZV_SLOW_QUERY_MS)\n",
                    service.slow_query_ms());
        continue;
      }
      std::printf("last %zu queries over %.0f ms (most recent first):\n",
                  slow.size(), service.slow_query_ms());
      for (const auto& q : slow) {
        std::printf("  %8.1f ms  %-10s %s  fetch %.1f ms, score %.1f ms%s\n",
                    q.total_ms, q.dataset.c_str(),
                    q.status.ok() ? "ok" : q.status.ToString().c_str(),
                    q.stats.fetch_ms, q.stats.score_ms,
                    q.trace != nullptr ? "  [traced]" : "");
        std::printf("      %s\n", OneLine(q.zql).c_str());
      }
      continue;
    }
    if (trimmed == ":stats") {
      const zv::server::ServiceStats st = service.stats();
      const uint64_t probes = st.cache_hits + st.cache_misses;
      std::printf(
          "queries: %llu submitted, %llu completed, %llu failed, %llu "
          "cancelled, %llu rejected\n",
          static_cast<unsigned long long>(st.submitted),
          static_cast<unsigned long long>(st.completed),
          static_cast<unsigned long long>(st.failed),
          static_cast<unsigned long long>(st.cancelled),
          static_cast<unsigned long long>(st.rejected));
      std::printf(
          "result cache: %llu/%llu hits (%.0f%%), %zu entries, %.1f KB; "
          "contexts reused: %llu (%zu cached, %.1f KB)\n",
          static_cast<unsigned long long>(st.cache_hits),
          static_cast<unsigned long long>(probes),
          probes > 0 ? 100.0 * static_cast<double>(st.cache_hits) /
                           static_cast<double>(probes)
                     : 0.0,
          st.result_cache_entries,
          static_cast<double>(st.result_cache_bytes) / 1024.0,
          static_cast<unsigned long long>(st.contexts_reused),
          st.context_cache_entries,
          static_cast<double>(st.context_cache_bytes) / 1024.0);
      std::printf("sessions: %zu active; %zu in flight, %zu queued\n",
                  st.sessions, st.in_flight, st.queued);
      continue;
    }
    if (trimmed == ":reload") {
      auto fresh = LoadDataset(dataset);
      if (auto s = service.ReplaceDataset(fresh); !s.ok()) {
        std::printf("error: %s\n", s.ToString().c_str());
        continue;
      }
      table = std::move(fresh);
      std::printf("dataset '%s' reloaded — epoch is now %llu, cached "
                  "results invalidated\n",
                  table_name.c_str(),
                  static_cast<unsigned long long>(
                      std::move(service.DatasetEpoch(table_name)).value()));
      continue;
    }
    if (!trimmed.empty()) {
      buffer += line;
      buffer += '\n';
      continue;
    }
    if (buffer.empty()) continue;
    submit_buffered(/*async=*/false);
  }
  std::printf("\nbye.\n");
  return 0;
}
