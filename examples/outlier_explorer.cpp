/// \file outlier_explorer.cpp
/// \brief The climate/server-monitoring case studies (Chapter 1): which
/// entity is behaving unusually relative to the rest? Runs the Table 3.20
/// two-level-iteration outlier query on airline delay data, then contrasts
/// it with a representative search (Table 3.22 shape).

#include <cstdio>

#include "engine/roaring_db.h"
#include "tasks/primitives.h"
#include "viz/vega_emitter.h"
#include "workload/datasets.h"
#include "zql/executor.h"

int main() {
  zv::AirlineDataOptions data_opts;
  data_opts.num_rows = 120000;
  data_opts.num_airports = 30;
  auto airline = zv::MakeAirlineTable(data_opts);
  zv::RoaringDatabase db;
  if (auto s = db.RegisterTable(airline); !s.ok()) {
    std::fprintf(stderr, "register failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // Table 3.20: representative set first, then the airports whose
  // delay-over-year visualization is farthest from every representative.
  const char* outlier_query =
      "f1 | 'year' | 'dep_delay' | v1 <- 'origin'.* | | bar.(y=agg('avg')) "
      "| v2 <- R(5, v1, f1)\n"
      "f2 | 'year' | 'dep_delay' | v2 | | bar.(y=agg('avg')) |\n"
      "f3 | 'year' | 'dep_delay' | v1 | | bar.(y=agg('avg')) | v3 <- "
      "argmax_v1[k=3] min_v2 D(f3, f2)\n"
      "*f4 | 'year' | 'dep_delay' | v3 | | bar.(y=agg('avg')) |";
  std::printf("ZQL (Table 3.20: outlier search over airports):\n%s\n\n",
              outlier_query);

  zv::zql::ZqlExecutor executor(&db, "airline");
  auto result = executor.ExecuteText(outlier_query);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("3 most anomalous airports (avg departure delay by year):\n\n");
  for (const auto& viz : result->outputs[0].visuals) {
    std::printf("%s\n", zv::ToAsciiChart(viz).c_str());
  }

  // Representative search for contrast: the 3 typical delay shapes.
  const char* repr_query =
      "f1 | 'year' | 'dep_delay' | v1 <- 'origin'.* | | bar.(y=agg('avg')) "
      "| v2 <- R(3, v1, f1)\n"
      "*f2 | 'year' | 'dep_delay' | v2 | | bar.(y=agg('avg')) |";
  zv::zql::ZqlExecutor repr_exec(&db, "airline");
  auto reprs = repr_exec.ExecuteText(repr_query);
  if (reprs.ok()) {
    std::printf("3 representative delay trends:\n");
    for (const auto& viz : reprs->outputs[0].visuals) {
      std::printf("  - %s, trend %.2f\n", viz.Label().c_str(),
                  zv::Trend(viz));
    }
  }
  return 0;
}
