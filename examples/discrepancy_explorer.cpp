/// \file discrepancy_explorer.cpp
/// \brief The paper's flagship business query (Table 2.3 / 5.1): find the
/// products doing well on sales in the US but badly in the UK, and
/// visualize their profit — three lines of ZQL instead of manually
/// examining two charts per product.
///
/// Also demonstrates the optimization levels of Chapter 5: the same query
/// is executed under NoOpt / Intra-Line / Intra-Task / Inter-Task and the
/// SQL query/request counts are reported.

#include <cstdio>

#include "engine/roaring_db.h"
#include "viz/vega_emitter.h"
#include "workload/datasets.h"
#include "zql/executor.h"

int main() {
  zv::SalesDataOptions data_opts;
  data_opts.num_rows = 100000;
  data_opts.num_products = 30;
  data_opts.divergent_fraction = 0.25;
  auto sales = zv::MakeSalesTable(data_opts);
  zv::RoaringDatabase db;
  if (auto s = db.RegisterTable(sales); !s.ok()) {
    std::fprintf(stderr, "register failed: %s\n", s.ToString().c_str());
    return 1;
  }

  const char* query =
      "f1 | 'year' | 'sales' | v1 <- 'product'.* | location='US' | | v2 <- "
      "argany_v1[t > 0] T(f1)\n"
      "f2 | 'year' | 'sales' | v1 | location='UK' | | v3 <- argany_v1[t < 0] "
      "T(f2)\n"
      "*f3 | 'year' | 'profit' | v4 <- (v2.range & v3.range) | | |";
  std::printf("ZQL (Table 2.3: up in US, down in UK):\n%s\n\n", query);

  for (zv::zql::OptLevel level :
       {zv::zql::OptLevel::kNoOpt, zv::zql::OptLevel::kIntraLine,
        zv::zql::OptLevel::kIntraTask, zv::zql::OptLevel::kInterTask}) {
    zv::zql::ZqlOptions opts;
    opts.optimization = level;
    zv::zql::ZqlExecutor executor(&db, "sales", opts);
    auto result = executor.ExecuteText(query);
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("%-11s %3llu SQL queries in %2llu requests, %7.1f ms\n",
                zv::zql::OptLevelToString(level),
                static_cast<unsigned long long>(result->stats.sql_queries),
                static_cast<unsigned long long>(result->stats.sql_requests),
                result->stats.total_ms);
    if (level == zv::zql::OptLevel::kInterTask) {
      std::printf("\n%zu divergent products found:\n\n",
                  result->outputs[0].visuals.size());
      size_t shown = 0;
      for (const auto& viz : result->outputs[0].visuals) {
        if (++shown > 3) break;
        std::printf("%s\n", zv::ToAsciiChart(viz).c_str());
      }
    }
  }
  return 0;
}
