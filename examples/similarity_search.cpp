/// \file similarity_search.cpp
/// \brief The §6.1 real-estate scenario: a user sketches a pattern (a peak
/// between 2008 and 2012) and asks zenvisage for the states whose
/// sold-price trend most resembles it — the drag-and-drop interface's
/// "similarity search", expressed as the Table 2.2 ZQL shape.

#include <cstdio>

#include "engine/scan_db.h"
#include "tasks/recommender.h"
#include "viz/vega_emitter.h"
#include "workload/datasets.h"
#include "zql/builder.h"
#include "zql/canonical.h"
#include "zql/executor.h"

int main() {
  zv::HousingDataOptions data_opts;
  data_opts.num_rows = 40000;
  data_opts.num_states = 20;
  auto housing = zv::MakeHousingTable(data_opts);
  zv::ScanDatabase db;
  if (auto s = db.RegisterTable(housing); !s.ok()) {
    std::fprintf(stderr, "register failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // The "user-drawn" input: a peak around 2008-2012 (normalized shape; the
  // distance metric z-normalizes, so only the shape matters).
  zv::Visualization drawn;
  drawn.x_attr = "year";
  drawn.y_attr = "sold_price";
  drawn.series = {{"sold_price", {}}};
  for (int year = 2004; year <= 2015; ++year) {
    drawn.xs.push_back(zv::Value::Int(year));
    const double peak = (year >= 2008 && year <= 2012) ? 1.0 : 0.2;
    drawn.series[0].ys.push_back(peak);
  }
  std::printf("user-drawn pattern:\n%s\n", zv::ToAsciiChart(drawn).c_str());

  // Table 2.2, built with ZqlBuilder: f1 binds the sketch, f2 scans every
  // state's average sold price and keeps the 3 closest to the sketch, f3
  // iterates the selection for output.
  auto built =
      zv::zql::ZqlBuilder()
          .Row("f1").UserInput()
          .Row("f2")
              .X("year").Y("sold_price")
              .ZDeclare("v1", zv::zql::ZSet::All("state"))
              .Viz("bar.(y=agg('avg'))")
              .Process(zv::zql::ProcessBuilder({"v2"})
                           .ArgMin({"v1"}).K(3)
                           .Call("D", {"f1", "f2"}))
          .Row("f3").Output()
              .X("year").Y("sold_price")
              .ZReuse("v2")
              .Viz("bar.(y=agg('avg'))")
          .Build();
  if (!built.ok()) {
    std::fprintf(stderr, "builder error: %s\n",
                 built.status().ToString().c_str());
    return 1;
  }
  const zv::zql::ZqlQuery query = std::move(built).value();
  std::printf("ZQL (canonical)>\n%s\n",
              zv::zql::CanonicalText(query).c_str());

  zv::zql::ZqlExecutor executor(&db, "housing");
  executor.SetUserInput("f1", drawn);
  auto result = executor.Execute(query);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("top matches (most similar first):\n\n");
  for (const auto& viz : result->outputs[0].visuals) {
    std::printf("%s\n", zv::ToAsciiChart(viz).c_str());
  }

  // The recommendation panel (§6.1): diverse trends for the same axes.
  const zv::zql::ZqlQuery all_states_query =
      zv::zql::ZqlBuilder()
          .Row("f1").Output()
          .X("year").Y("sold_price")
          .ZDeclare("v1", zv::zql::ZSet::All("state"))
          .Viz("bar.(y=agg('avg'))")
          .Build().ValueOrDie();
  zv::zql::ZqlExecutor rec_exec(&db, "housing");
  auto all = rec_exec.Execute(all_states_query);
  if (all.ok()) {
    std::vector<const zv::Visualization*> candidates;
    for (const auto& v : all->outputs[0].visuals) candidates.push_back(&v);
    auto recs = zv::RecommendDiverse(candidates);
    std::printf("recommendation panel (%zu diverse trends):\n", recs.size());
    for (const auto& rec : recs) {
      std::printf("  - %s (cluster of %zu states)\n",
                  candidates[rec.index]->Label().c_str(), rec.cluster_size);
    }
  }
  return 0;
}
