/// \file quickstart.cpp
/// \brief Five-minute tour: build a dataset, register it with a backend,
/// run the paper's first ZQL query (Table 2.1), and render the results.
///
///   $ ./quickstart
///
/// Steps:
///  1. Generate the synthetic product-sales table.
///  2. Register it with the in-memory Roaring Bitmap database.
///  3. Build the Table 2.1 query programmatically with ZqlBuilder — "the
///     set of total-sales-over-years bar charts for each product sold in
///     the US" — and execute the typed AST (no parser involved).
///  4. Print the result as ASCII charts and one Vega-lite spec.

#include <cstdio>

#include "engine/roaring_db.h"
#include "viz/vega_emitter.h"
#include "workload/datasets.h"
#include "zql/builder.h"
#include "zql/canonical.h"
#include "zql/executor.h"

int main() {
  // 1. Data: 50k rows, 8 products, planted trends.
  zv::SalesDataOptions data_opts;
  data_opts.num_rows = 50000;
  data_opts.num_products = 8;
  auto sales = zv::MakeSalesTable(data_opts);
  std::printf("generated '%s': %zu rows, %zu columns\n",
              sales->name().c_str(), sales->num_rows(),
              sales->schema().num_columns());

  // 2. Backend: the Roaring Bitmap database builds per-value indexes for
  //    every categorical column at registration.
  zv::RoaringDatabase db;
  if (auto s = db.RegisterTable(sales); !s.ok()) {
    std::fprintf(stderr, "register failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("roaring indexes: %zu KiB\n\n", db.IndexBytes("sales") / 1024);

  // 3. The Table 2.1 query, built structurally: each fluent call is one
  //    cell of the paper's tabular form. CanonicalText renders the exact
  //    ZQL a text client would have typed.
  auto built = zv::zql::ZqlBuilder()
                   .Row("f1").Output()
                   .X("year").Y("sales")
                   .ZDeclare("v1", zv::zql::ZSet::All("product"))
                   .Where("location='US'")
                   .Viz("bar.(y=agg('sum'))")
                   .Build();
  if (!built.ok()) {
    std::fprintf(stderr, "builder error: %s\n",
                 built.status().ToString().c_str());
    return 1;
  }
  const zv::zql::ZqlQuery query = std::move(built).value();
  std::printf("ZQL (canonical)>\n%s\n",
              zv::zql::CanonicalText(query).c_str());

  zv::zql::ZqlExecutor executor(&db, "sales");
  auto result = executor.Execute(query);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  // 4. Render.
  const auto& visuals = result->outputs[0].visuals;
  std::printf("%zu visualizations (%llu SQL queries in %llu requests, "
              "%.1f ms total)\n\n",
              visuals.size(),
              static_cast<unsigned long long>(result->stats.sql_queries),
              static_cast<unsigned long long>(result->stats.sql_requests),
              result->stats.total_ms);
  for (size_t i = 0; i < visuals.size() && i < 3; ++i) {
    std::printf("%s", zv::ToAsciiChart(visuals[i]).c_str());
    std::printf("\n");
  }
  std::printf("Vega-lite spec for the first visualization:\n%s\n",
              zv::ToVegaLiteJson(visuals[0]).c_str());
  return 0;
}
