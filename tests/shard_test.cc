/// \file shard_test.cc
/// \brief The sharded-execution contract: results are byte-identical to the
/// unsharded oracle across chunk sizes (including table < 1 chunk, chunk =
/// 1 row, and an empty table), both backends, both schedules, and
/// ZV_THREADS in {1, 4} — with the same sql_queries/sql_requests deltas.
/// Plus: mid-scan cancellation reaches every shard worker promptly, the
/// chunk-scan primitives match a serial scan row for row, EXPLAIN renders
/// the fan-out, and a ReplaceDataset swap rebuilds the chunk catalog. Runs
/// under the tsan/asan ctest gates (tools/run_tsan.sh, tools/run_asan.sh):
/// shard workers, the chunk queues, and the fetch thread race-check
/// together.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "common/parallel.h"
#include "engine/chunk_map.h"
#include "engine/roaring_db.h"
#include "engine/scan_db.h"
#include "server/query_service.h"
#include "sql/parser.h"
#include "tests/test_util.h"
#include "workload/datasets.h"
#include "zql/executor.h"
#include "zql/parser.h"
#include "zql/plan.h"

namespace zv::zql {
namespace {

class ScopedThreads {
 public:
  explicit ScopedThreads(size_t n) { SetParallelThreads(n); }
  ~ScopedThreads() { SetParallelThreads(0); }
};

bool SameVisualization(const Visualization& a, const Visualization& b) {
  return a.x_attr == b.x_attr && a.y_attr == b.y_attr &&
         a.slices == b.slices && a.constraints == b.constraints &&
         a.spec == b.spec && a.xs == b.xs && a.series == b.series;
}

::testing::AssertionResult SameResult(const ZqlResult& a, const ZqlResult& b) {
  if (a.outputs.size() != b.outputs.size()) {
    return ::testing::AssertionFailure() << "output count mismatch";
  }
  for (size_t o = 0; o < a.outputs.size(); ++o) {
    if (a.outputs[o].name != b.outputs[o].name ||
        a.outputs[o].visuals.size() != b.outputs[o].visuals.size()) {
      return ::testing::AssertionFailure()
             << "output " << o << " shape mismatch";
    }
    for (size_t v = 0; v < a.outputs[o].visuals.size(); ++v) {
      if (!SameVisualization(a.outputs[o].visuals[v],
                             b.outputs[o].visuals[v])) {
        return ::testing::AssertionFailure()
               << "output " << a.outputs[o].name << " visual " << v << ": "
               << a.outputs[o].visuals[v].DebugString() << " vs "
               << b.outputs[o].visuals[v].DebugString();
      }
    }
  }
  return ::testing::AssertionSuccess();
}

/// Query shapes covering the fetch paths sharding touches: a predicate
/// fetch over a named set, a task pipeline with reuse, and a no-WHERE
/// full-table aggregation (the bitmap fast path on the Roaring backend).
const char* const kSetQuery =
    "f1 | 'year' | 'sales' | v1 <- P | location='US' | bar.(y=agg('sum')) "
    "| v2 <- argany_v1[t > 0] T(f1)\n"
    "f2 | 'year' | 'sales' | v1 | location='UK' | bar.(y=agg('sum')) | v3 "
    "<- argany_v1[t < 0] T(f2)\n"
    "*f3 | 'year' | 'profit' | v4 <- (v2.range | v3.range) | | "
    "bar.(y=agg('sum')) |";
const char* const kNoWhereQuery =
    "*f1 | 'year' | 'sales' | v1 <- 'location'.* | | bar.(y=agg('sum')) |";

NamedSets MakeP(size_t n) {
  NamedSets sets;
  std::vector<Value> products;
  for (size_t i = 0; i < n; ++i) {
    products.push_back(Value::Str("product" + std::to_string(i)));
  }
  sets.value_sets["P"] = {"product", products};
  return sets;
}

std::shared_ptr<Table> MediumSales() {
  static std::shared_ptr<Table> table = [] {
    SalesDataOptions opts;
    opts.num_rows = 3000;
    opts.num_products = 10;
    return MakeSalesTable(opts);
  }();
  return table;
}

Result<ZqlResult> RunZql(Database* db, const char* zql, size_t shards,
                      bool pipelined) {
  ZqlOptions opts;
  opts.named_sets = MakeP(8);
  opts.pipelined_execution = pipelined;
  opts.shards = shards;
  ZqlExecutor exec(db, "sales", opts);
  return exec.ExecuteText(zql);
}

template <typename DbType>
void RunIdentityMatrix() {
  DbType db;
  ZV_ASSERT_OK(db.RegisterTable(MediumSales()));
  for (const char* zql : {kSetQuery, kNoWhereQuery}) {
    // Oracle: serial, unsharded, staged (chunk size irrelevant at 1 shard).
    ZqlResult baseline;
    {
      ScopedThreads threads(1);
      ZV_ASSERT_OK_AND_ASSIGN(
          baseline, RunZql(&db, zql, /*shards=*/1, /*pipelined=*/false));
    }
    // Chunk sizes: 1 row per chunk (maximal fan-out), a mid split, an
    // exact divisor of the 3000-row table (1500: the last chunk boundary
    // lands exactly on the last row — no ragged tail chunk), and the
    // default 2^18 rows — which the table fits inside, so the "table < 1
    // chunk" case degenerates to the unsharded path. Shard counts include
    // 8, which exceeds the chunk count at chunk_rows=1500 (2 chunks):
    // surplus shard workers must idle out without disturbing the bytes.
    for (size_t chunk_rows :
         {size_t{1}, size_t{256}, size_t{1500}, size_t{0}}) {
      ZV_ASSERT_OK(db.RebuildChunkMap("sales", chunk_rows));
      for (size_t shards : {size_t{2}, size_t{4}, size_t{8}}) {
        for (size_t nthreads : {size_t{1}, size_t{4}}) {
          for (bool pipelined : {false, true}) {
            ScopedThreads threads(nthreads);
            ZV_ASSERT_OK_AND_ASSIGN(ZqlResult got,
                                    RunZql(&db, zql, shards, pipelined));
            EXPECT_TRUE(SameResult(baseline, got))
                << db.name() << " chunk_rows=" << chunk_rows
                << " shards=" << shards << " threads=" << nthreads
                << " pipelined=" << pipelined;
            EXPECT_EQ(baseline.stats.sql_queries, got.stats.sql_queries);
            EXPECT_EQ(baseline.stats.sql_requests, got.stats.sql_requests);
          }
        }
      }
    }
    ZV_ASSERT_OK(db.RebuildChunkMap("sales", 0));
  }
}

TEST(ShardTest, ScanBackendByteIdentityMatrix) {
  RunIdentityMatrix<ScanDatabase>();
}

TEST(ShardTest, RoaringBackendByteIdentityMatrix) {
  RunIdentityMatrix<RoaringDatabase>();
}

/// chunks_scanned accounts every chunk of every fetched statement when
/// sharding engages, and stays 0 when it cannot (one chunk / one shard).
TEST(ShardTest, ChunkStatsPopulated) {
  ScanDatabase db;
  ZV_ASSERT_OK(db.RegisterTable(MediumSales()));
  ZV_ASSERT_OK(db.RebuildChunkMap("sales", 500));  // 6 chunks
  ScopedThreads threads(1);
  ZV_ASSERT_OK_AND_ASSIGN(ZqlResult sharded, RunZql(&db, kSetQuery, 4, true));
  ZV_ASSERT_OK_AND_ASSIGN(ZqlResult unsharded, RunZql(&db, kSetQuery, 1, true));
  EXPECT_EQ(sharded.stats.chunks_scanned, 6 * sharded.stats.sql_queries);
  EXPECT_EQ(unsharded.stats.chunks_scanned, 0u);
  EXPECT_EQ(unsharded.stats.shard_ms, 0.0);
}

/// Chunk-boundary edge geometry. An exact divisor leaves no ragged tail:
/// the last chunk's end is exactly the row count, and the ranges tile
/// [0, num_rows) without overlap. A non-divisor leaves one short tail
/// chunk, never an extra empty one.
TEST(ShardTest, ChunkBoundaryExactlyOnLastRow) {
  const ChunkMap exact = ChunkMap::Build(3000, 1500);
  ASSERT_EQ(exact.num_chunks(), 2u);
  EXPECT_EQ(exact.chunk_range(0), (std::pair<uint32_t, uint32_t>{0, 1500}));
  EXPECT_EQ(exact.chunk_range(1),
            (std::pair<uint32_t, uint32_t>{1500, 3000}));
  const ChunkMap ragged = ChunkMap::Build(3000, 1700);
  ASSERT_EQ(ragged.num_chunks(), 2u);
  EXPECT_EQ(ragged.chunk_range(1).second, 3000u);
  // Tiling invariant across both shapes: contiguous, complete, in order.
  for (const ChunkMap& map : {exact, ragged}) {
    uint32_t next = 0;
    for (size_t c = 0; c < map.num_chunks(); ++c) {
      const auto [begin, end] = map.chunk_range(c);
      EXPECT_EQ(begin, next);
      EXPECT_LT(begin, end);
      next = end;
    }
    EXPECT_EQ(next, 3000u);
  }
}

/// More shard workers than chunks: with 2 chunks and 8 shards the surplus
/// workers find no chunk to claim and exit idle; results and the
/// chunks_scanned accounting match the exactly-subscribed run.
TEST(ShardTest, MoreShardsThanChunks) {
  ScanDatabase db;
  ZV_ASSERT_OK(db.RegisterTable(MediumSales()));
  ZV_ASSERT_OK(db.RebuildChunkMap("sales", 1500));  // exactly 2 chunks
  ScopedThreads threads(4);
  ZqlResult baseline;
  {
    ScopedThreads serial(1);
    ZV_ASSERT_OK_AND_ASSIGN(baseline, RunZql(&db, kSetQuery, 1, false));
  }
  ZV_ASSERT_OK_AND_ASSIGN(ZqlResult matched, RunZql(&db, kSetQuery, 2, true));
  ZV_ASSERT_OK_AND_ASSIGN(ZqlResult surplus, RunZql(&db, kSetQuery, 8, true));
  EXPECT_TRUE(SameResult(baseline, matched));
  EXPECT_TRUE(SameResult(baseline, surplus));
  EXPECT_EQ(surplus.stats.chunks_scanned, matched.stats.chunks_scanned);
}

/// An empty table has zero chunks; sharded options must degrade to the
/// unsharded path and produce the oracle's (empty-series) outputs.
TEST(ShardTest, EmptyTableDegradesToUnsharded) {
  Schema schema({{"year", ColumnType::kCategorical},
                 {"product", ColumnType::kCategorical},
                 {"location", ColumnType::kCategorical},
                 {"sales", ColumnType::kDouble},
                 {"profit", ColumnType::kDouble}});
  auto make_empty = [&] {
    TableBuilder b("sales", schema);
    return b.Finish();
  };
  ScanDatabase scan_db;
  RoaringDatabase roaring_db;
  ZV_ASSERT_OK(scan_db.RegisterTable(make_empty()));
  ZV_ASSERT_OK(roaring_db.RegisterTable(make_empty()));
  for (Database* db : {static_cast<Database*>(&scan_db),
                       static_cast<Database*>(&roaring_db)}) {
    ZV_ASSERT_OK_AND_ASSIGN(ChunkMap map, db->GetChunkMap("sales"));
    EXPECT_EQ(map.num_chunks(), 0u);
    // A fixed visualization (value iteration over an empty table would be
    // an empty Z set, rejected upstream of fetch on both paths alike).
    const char* fixed = "*f1 | 'year' | 'sales' | | | bar.(y=agg('sum')) |";
    ZV_ASSERT_OK_AND_ASSIGN(ZqlResult baseline, RunZql(db, fixed, 1, false));
    ZV_ASSERT_OK_AND_ASSIGN(ZqlResult sharded, RunZql(db, fixed, 4, true));
    EXPECT_TRUE(SameResult(baseline, sharded)) << db->name();
    EXPECT_EQ(sharded.stats.chunks_scanned, 0u);
  }
}

/// The chunk-scan primitives themselves: PrepareChunkScan + per-chunk
/// ScanRange + positional concat select exactly the rows a serial
/// ExecuteInternal would, on both backends, for predicate and no-WHERE
/// statements — including a residual (measure) conjunct on the Roaring
/// backend, which splits bitmap + row-wise.
TEST(ShardTest, ChunkScannerMatchesSerialSelection) {
  auto table = MediumSales();
  ScanDatabase scan_db;
  RoaringDatabase roaring_db;
  ZV_ASSERT_OK(scan_db.RegisterTable(table));
  ZV_ASSERT_OK(roaring_db.RegisterTable(table));
  const char* const sqls[] = {
      "SELECT year, SUM(sales) FROM sales GROUP BY year",
      "SELECT year, SUM(sales) FROM sales WHERE location = 'US' GROUP BY "
      "year",
      "SELECT year, SUM(profit) FROM sales WHERE location = 'US' AND sales "
      "> 100 GROUP BY year",
  };
  for (Database* db : {static_cast<Database*>(&scan_db),
                       static_cast<Database*>(&roaring_db)}) {
    for (const char* text : sqls) {
      ZV_ASSERT_OK_AND_ASSIGN(sql::SelectStatement stmt,
                              sql::ParseSelect(text));
      ZV_ASSERT_OK_AND_ASSIGN(std::unique_ptr<ChunkScanner> scanner,
                              db->PrepareChunkScan(stmt));
      const ChunkMap map = ChunkMap::Build(table->num_rows(), 170);
      std::vector<uint32_t> rows;
      for (size_t c = 0; c < map.num_chunks(); ++c) {
        const auto [begin, end] = map.chunk_range(c);
        ZV_ASSERT_OK(scanner->ScanRange(begin, end, &rows));
      }
      // Whole-table range in one call must equal the chunked concat.
      std::vector<uint32_t> whole;
      ZV_ASSERT_OK(scanner->ScanRange(
          0, static_cast<uint32_t>(table->num_rows()), &whole));
      EXPECT_EQ(rows, whole) << db->name() << ": " << text;
      // And the finished result must equal the serial execution's bytes.
      ZV_ASSERT_OK_AND_ASSIGN(ResultSet finished,
                              db->FinishChunkScan(stmt, rows));
      ZV_ASSERT_OK_AND_ASSIGN(ResultSet serial, db->Execute(stmt));
      EXPECT_EQ(finished.columns, serial.columns) << db->name() << ": "
                                                  << text;
      EXPECT_EQ(finished.rows, serial.rows) << db->name() << ": " << text;
    }
  }
}

/// Cancellation mid-scan: shard workers poll the mirrored token inside
/// ScanRange, so cancelling during a wide fan-out (20000 rows in 64-row
/// chunks, ~313 in-flight chunk jobs per statement) resolves promptly
/// with kCancelled — never a partial OK result.
TEST(ShardTest, CancelMidShardedScanReturnsPromptly) {
  SalesDataOptions data_opts;
  data_opts.num_rows = 20000;
  data_opts.num_products = 30;
  ScanDatabase db;
  ZV_ASSERT_OK(db.RegisterTable(MakeSalesTable(data_opts)));
  ZV_ASSERT_OK(db.RebuildChunkMap("sales", 64));
  db.set_request_latency_micros(20000);  // 20 ms per round trip

  ZqlOptions opts;
  opts.optimization = OptLevel::kNoOpt;  // one request per visualization
  opts.pipelined_execution = true;
  opts.shards = 4;
  ZqlExecutor exec(&db, "sales", opts);
  const char* query = "*f1 | 'year' | 'sales' | v1 <- 'product'.* | | |";

  CancelToken token;
  Status status = Status::OK();
  const auto t0 = std::chrono::steady_clock::now();
  std::thread runner([&] {
    CancelScope scope(token);
    Result<ZqlResult> r = exec.ExecuteText(query);
    status = r.ok() ? Status::OK() : r.status();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  token.Cancel();
  runner.join();
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_EQ(status.code(), StatusCode::kCancelled) << status.ToString();
  EXPECT_LT(elapsed_ms, 400.0) << "cancellation latency far too high";
}

/// EXPLAIN's FetchOp fan-out annotation: rendered when the caller supplies
/// a chunk count and the plan wants >1 worker; plain otherwise. shards
/// reports min(workers, chunks) — the pool the scheduler actually starts.
TEST(ShardTest, ExplainRendersFanOut) {
  ZV_ASSERT_OK_AND_ASSIGN(ZqlQuery q, ParseQuery(kNoWhereQuery));
  ZqlOptions opts;
  opts.shards = 4;
  ZV_ASSERT_OK_AND_ASSIGN(PhysicalPlan plan, BuildPhysicalPlan(q, opts));
  EXPECT_NE(plan.Render(q, 38).find("[batched scan, chunks=38, shards=4]"),
            std::string::npos);
  EXPECT_NE(plan.Render(q, 3).find("chunks=3, shards=3"), std::string::npos);
  EXPECT_EQ(plan.Render(q).find("chunks="), std::string::npos);
  opts.shards = 1;
  ZV_ASSERT_OK_AND_ASSIGN(PhysicalPlan unsharded, BuildPhysicalPlan(q, opts));
  EXPECT_EQ(unsharded.Render(q, 38).find("chunks="), std::string::npos);
}

/// ReplaceDataset swaps table and backend atomically; the fresh backend's
/// RegisterTable rebuilds the chunk catalog, so post-swap sharded queries
/// partition the *new* row space and reproduce the unsharded oracle.
TEST(ShardTest, ReplaceDatasetRebuildsChunkMap) {
  server::ServiceOptions service_opts;
  service_opts.zql.shards = 4;
  server::QueryService service(service_opts);

  SalesDataOptions small;
  small.num_rows = 1000;
  small.num_products = 10;
  ZV_ASSERT_OK(service.RegisterDataset(MakeSalesTable(small)));
  ZV_ASSERT_OK_AND_ASSIGN(std::shared_ptr<Database> db0,
                          service.DatasetDatabase("sales"));
  ZV_ASSERT_OK(db0->RebuildChunkMap("sales", 100));
  ZV_ASSERT_OK_AND_ASSIGN(ChunkMap before, db0->GetChunkMap("sales"));
  EXPECT_EQ(before.num_chunks(), 10u);

  SalesDataOptions bigger = small;
  bigger.num_rows = 2500;
  ZV_ASSERT_OK(service.ReplaceDataset(MakeSalesTable(bigger)));
  ZV_ASSERT_OK_AND_ASSIGN(std::shared_ptr<Database> db1,
                          service.DatasetDatabase("sales"));
  EXPECT_NE(db0.get(), db1.get());
  ZV_ASSERT_OK_AND_ASSIGN(ChunkMap after, db1->GetChunkMap("sales"));
  EXPECT_EQ(after.num_rows(), 2500u);

  // Sharded execution against the swapped dataset matches the oracle.
  ZV_ASSERT_OK(db1->RebuildChunkMap("sales", 250));
  ZV_ASSERT_OK_AND_ASSIGN(ZqlResult baseline,
                          RunZql(db1.get(), kNoWhereQuery, 1, false));
  ZV_ASSERT_OK_AND_ASSIGN(ZqlResult sharded,
                          RunZql(db1.get(), kNoWhereQuery, 4, true));
  EXPECT_TRUE(SameResult(baseline, sharded));
  EXPECT_GT(sharded.stats.chunks_scanned, 0u);
}

}  // namespace
}  // namespace zv::zql
