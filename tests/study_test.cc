#include <gtest/gtest.h>

#include "common/stats.h"
#include "study/user_study.h"
#include "tests/test_util.h"

namespace zv {
namespace {

TEST(UserStudyTest, ReproducesPaperOrdering) {
  StudyResult r = RunUserStudy();
  const double dd = Mean(r.Times(StudyInterface::kDragDrop));
  const double cb = Mean(r.Times(StudyInterface::kCustomBuilder));
  const double base = Mean(r.Times(StudyInterface::kBaseline));
  // Paper §8.1 Finding 1: drag-drop (74s) < custom builder (115s) <
  // baseline (172.5s).
  EXPECT_LT(dd, cb);
  EXPECT_LT(cb, base);
  // Rough magnitudes: baseline is >2x drag-drop, ~1.5x custom builder.
  EXPECT_GT(base / dd, 1.8);
  EXPECT_GT(base / cb, 1.2);
}

TEST(UserStudyTest, ReproducesAccuracyOrdering) {
  StudyResult r = RunUserStudy();
  const double dd = Mean(r.Accuracies(StudyInterface::kDragDrop));
  const double cb = Mean(r.Accuracies(StudyInterface::kCustomBuilder));
  const double base = Mean(r.Accuracies(StudyInterface::kBaseline));
  // Paper Finding 2: custom (96.3%) > drag-drop (85.3%) > baseline (69.9%).
  EXPECT_GT(cb, dd);
  EXPECT_GT(dd, base);
  EXPECT_GT(cb, 0.9);
  EXPECT_LT(base, 0.8);
}

TEST(UserStudyTest, TukeyMatchesTable82Pattern) {
  StudyResult r = RunUserStudy();
  // Table 8.2: drag-drop vs custom builder insignificant (paper p=0.0605);
  // both vs baseline significant at p<0.01 (paper p=0.0010 and 0.0069).
  ASSERT_EQ(r.tukey.size(), 3u);
  ASSERT_EQ(r.participant_times[0].size(), 12u);  // paper's n
  for (const auto& c : r.tukey) {
    const bool involves_baseline =
        c.group_a == static_cast<size_t>(StudyInterface::kBaseline) ||
        c.group_b == static_cast<size_t>(StudyInterface::kBaseline);
    if (involves_baseline) {
      EXPECT_TRUE(c.significant_01)
          << c.group_a << " vs " << c.group_b << " p=" << c.p_value;
    } else {
      EXPECT_FALSE(c.significant_01)
          << "drag-drop vs custom builder should be insignificant, p="
          << c.p_value;
    }
  }
  EXPECT_LT(r.anova.p_value, 0.01);
}

TEST(UserStudyTest, AccuracyOverTimeMonotone) {
  StudyResult r = RunUserStudy();
  auto curve = AccuracyOverTime(r, StudyInterface::kDragDrop, 300, 30);
  ASSERT_EQ(curve.size(), 31u);
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].second, curve[i - 1].second);
  }
  // Fig 8.2 shape: zenvisage reaches high accuracy well before the baseline.
  auto dd = AccuracyOverTime(r, StudyInterface::kDragDrop, 300, 30);
  auto base = AccuracyOverTime(r, StudyInterface::kBaseline, 300, 30);
  // At t = 120s the drag-drop interface is far ahead.
  EXPECT_GT(dd[12].second, base[12].second + 0.2);
}

TEST(UserStudyTest, Deterministic) {
  StudyOptions opts;
  StudyResult a = RunUserStudy(opts), b = RunUserStudy(opts);
  EXPECT_EQ(a.Times(StudyInterface::kBaseline),
            b.Times(StudyInterface::kBaseline));
}

TEST(UserStudyTest, ExperienceTableMatchesPaper) {
  auto rows = ParticipantExperience();
  ASSERT_EQ(rows.size(), 6u);
  EXPECT_EQ(rows[0].count, 8);  // spreadsheets
  EXPECT_EQ(rows[1].count, 4);  // Tableau
}

TEST(UserStudyTest, BaselineExaminesManyMoreVisualizations) {
  StudyResult r = RunUserStudy();
  double base_views = 0, dd_views = 0;
  for (const auto& t : r.outcomes[static_cast<size_t>(StudyInterface::kBaseline)]) {
    base_views += static_cast<double>(t.visualizations_examined);
  }
  for (const auto& t : r.outcomes[static_cast<size_t>(StudyInterface::kDragDrop)]) {
    dd_views += static_cast<double>(t.visualizations_examined);
  }
  // The mechanism behind the paper's findings: manual examination of many
  // visualizations vs top-k inspection.
  EXPECT_GT(base_views, 2 * dd_views);
}

}  // namespace
}  // namespace zv
