#include <gtest/gtest.h>

#include "engine/roaring_db.h"
#include "engine/scan_db.h"
#include "tests/test_util.h"
#include "zql/executor.h"

namespace zv::zql {
namespace {

class ZqlExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ZV_ASSERT_OK(db_.RegisterTable(testing::MakeTinySales()));
  }

  ZqlResult Run(const std::string& text, ZqlOptions opts = {},
                std::map<std::string, Visualization> inputs = {}) {
    ZqlExecutor exec(&db_, "sales", std::move(opts));
    for (auto& [name, viz] : inputs) exec.SetUserInput(name, std::move(viz));
    auto result = exec.ExecuteText(text);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? std::move(result).value() : ZqlResult{};
  }

  ScanDatabase db_;
};

// Table 2.1: one line, a collection of visualizations.
TEST_F(ZqlExecutorTest, CollectionPerProduct) {
  ZqlResult r = Run(
      "*f1 | 'year' | 'sales' | v1 <- 'product'.* | location='US' | "
      "bar.(y=agg('sum')) |");
  ASSERT_EQ(r.outputs.size(), 1u);
  const auto& visuals = r.outputs[0].visuals;
  ASSERT_EQ(visuals.size(), 3u);  // chair, desk, stapler
  // chair/US: 10, 20, 30 over 2014..2016.
  EXPECT_EQ(visuals[0].slices[0].value, Value::Str("chair"));
  ASSERT_EQ(visuals[0].xs.size(), 3u);
  EXPECT_EQ(visuals[0].xs[0], Value::Int(2014));
  EXPECT_EQ(visuals[0].ys(), (std::vector<double>{10, 20, 30}));
  // desk/US: 50, 40, 30.
  EXPECT_EQ(visuals[1].ys(), (std::vector<double>{50, 40, 30}));
  // stapler/US: 11, 21, 32.
  EXPECT_EQ(visuals[2].ys(), (std::vector<double>{11, 21, 32}));
}

TEST_F(ZqlExecutorTest, FixedSliceLiteral) {
  ZqlResult r = Run("*f1 | 'year' | 'sales' | 'product'.'desk' | | |");
  ASSERT_EQ(r.outputs[0].visuals.size(), 1u);
  // desk over both locations: 2014: 50+10, 2015: 40+25, 2016: 30+40.
  EXPECT_EQ(r.outputs[0].visuals[0].ys(), (std::vector<double>{60, 65, 70}));
}

TEST_F(ZqlExecutorTest, NoSliceAtAll) {
  ZqlResult r = Run("*f1 | 'year' | 'sales' | | | |");
  ASSERT_EQ(r.outputs[0].visuals.size(), 1u);
  EXPECT_EQ(r.outputs[0].visuals[0].ys(),
            (std::vector<double>{111, 126, 142}));
}

// Table 3.1: a set-valued Y axis.
TEST_F(ZqlExecutorTest, YAxisSet) {
  ZqlResult r = Run(
      "*f1 | 'year' | y1 <- {'profit', 'sales'} | 'product'.'stapler' | | |");
  ASSERT_EQ(r.outputs[0].visuals.size(), 2u);
  EXPECT_EQ(r.outputs[0].visuals[0].y_attr, "profit");
  EXPECT_EQ(r.outputs[0].visuals[0].ys(), (std::vector<double>{5, 7, 9}));
  EXPECT_EQ(r.outputs[0].visuals[1].y_attr, "sales");
  EXPECT_EQ(r.outputs[0].visuals[1].ys(), (std::vector<double>{11, 21, 32}));
}

// Table 3.2: composed y axis = one visualization, two series.
TEST_F(ZqlExecutorTest, ComposedYAxis) {
  ZqlResult r =
      Run("*f1 | 'year' | 'profit' + 'sales' | 'product'.'chair' | "
          "location='US' | |");
  ASSERT_EQ(r.outputs[0].visuals.size(), 1u);
  const Visualization& v = r.outputs[0].visuals[0];
  ASSERT_EQ(v.series.size(), 2u);
  EXPECT_EQ(v.series[0].ys, (std::vector<double>{5, 6, 7}));
  EXPECT_EQ(v.series[1].ys, (std::vector<double>{10, 20, 30}));
}

// Table 2.2-style: similarity search against a user-drawn line.
TEST_F(ZqlExecutorTest, SimilarityToUserInput) {
  Visualization drawn;
  drawn.x_attr = "year";
  drawn.y_attr = "sales";
  drawn.xs = {Value::Int(2014), Value::Int(2015), Value::Int(2016)};
  drawn.series = {{"sales", {1, 2, 3}}};  // rising trend

  ZqlResult r = Run(
      "-f1 | | | | | |\n"
      "f2 | 'year' | 'sales' | v1 <- 'product'.* | location='US' | | v2 <- "
      "argmin_v1[k=1] D(f1, f2)\n"
      "*f3 | 'year' | 'sales' | v2 | location='US' | |",
      {}, {{"f1", drawn}});
  ASSERT_EQ(r.outputs.size(), 1u);
  ASSERT_EQ(r.outputs[0].visuals.size(), 1u);
  // chair/US rises 10→30 exactly like the drawn 1→3 after normalization.
  EXPECT_EQ(r.outputs[0].visuals[0].slices[0].value, Value::Str("chair"));
}

// Table 2.3 / 5.1: positive trend in US, negative in UK.
TEST_F(ZqlExecutorTest, TrendFilterAcrossLocations) {
  ZqlResult r = Run(
      "f1 | 'year' | 'sales' | v1 <- 'product'.* | location='US' | | v2 <- "
      "argany_v1[t > 0] T(f1)\n"
      "f2 | 'year' | 'sales' | v1 | location='UK' | | v3 <- argany_v1[t < 0] "
      "T(f2)\n"
      "*f3 | 'year' | 'profit' | v4 <- (v2.range & v3.range) | | |");
  ASSERT_EQ(r.outputs.size(), 1u);
  // US positive: chair, stapler. UK negative: chair (stapler has no UK
  // rows; desk rises in UK). Intersection: chair.
  ASSERT_EQ(r.outputs[0].visuals.size(), 1u);
  EXPECT_EQ(r.outputs[0].visuals[0].slices[0].value, Value::Str("chair"));
  // chair profit across locations: 2014: 5+3, 2015: 6+2, 2016: 7+1.
  EXPECT_EQ(r.outputs[0].visuals[0].ys(), (std::vector<double>{8, 8, 8}));
}

// Table 3.13-style: top-k most similar to a reference, excluding it.
TEST_F(ZqlExecutorTest, TopKSimilarToReference) {
  ZqlResult r = Run(
      "f1 | 'year' | 'sales' | 'product'.'stapler' | | |\n"
      "f2 | 'year' | 'sales' | v1 <- 'product'.(* - 'stapler') | | | v2 <- "
      "argmin_v1[k=2] D(f1, f2)\n"
      "*f3 | 'year' | 'sales' | v2 | | |");
  ASSERT_EQ(r.outputs[0].visuals.size(), 2u);
  // stapler rises; chair total = 40/40/40 flat; desk total = 60/65/70
  // rising. Most similar first: desk.
  EXPECT_EQ(r.outputs[0].visuals[0].slices[0].value, Value::Str("desk"));
  EXPECT_EQ(r.outputs[0].visuals[1].slices[0].value, Value::Str("chair"));
}

// Table 3.15: reordering with .order.
TEST_F(ZqlExecutorTest, OrderDerivation) {
  ZqlResult r = Run(
      "f1 | 'year' | 'sales' | v1 <- 'product'.* | location='US' | | u1 <- "
      "argmin_v1[k=inf] T(f1)\n"
      "*f2=f1.order | | | u1 -> | | |");
  ASSERT_EQ(r.outputs[0].visuals.size(), 3u);
  // Increasing overall trend: desk falls (-), chair rises, stapler rises
  // slightly steeper after normalization.
  EXPECT_EQ(r.outputs[0].visuals[0].slices[0].value, Value::Str("desk"));
}

// Multiple Z columns (Table 3.8).
TEST_F(ZqlExecutorTest, TwoZColumns) {
  ZqlResult r = Run(
      "name | x | y | z | z2 | viz\n"
      "*f1 | 'year' | 'sales' | v1 <- 'product'.{'chair','desk'} | v2 <- "
      "'location'.{US, UK} | bar.(y=agg('sum'))");
  ASSERT_EQ(r.outputs[0].visuals.size(), 4u);
  const Visualization& chair_uk = r.outputs[0].visuals[1];
  EXPECT_EQ(chair_uk.slices[0].value, Value::Str("chair"));
  EXPECT_EQ(chair_uk.slices[1].value, Value::Str("UK"));
  EXPECT_EQ(chair_uk.ys(), (std::vector<double>{30, 20, 10}));
}

// Derived components: concatenation and derived bindings (Table 3.16 core).
TEST_F(ZqlExecutorTest, DerivedPlusAndBindings) {
  ZqlResult r = Run(
      "f1 | 'year' | 'sales' | v1 <- 'product'.(* - 'stapler') | | |\n"
      "f2 | 'year' | 'sales' | 'product'.'stapler' | | |\n"
      "f3=f1+f2 | | y1 <- _ | v2 <- 'product'._ | | |\n"
      "f4 | 'year' | 'profit' | v2 | | | v3 <- argmax_v2[k=2] D(f3, f4)\n"
      "*f5 | 'year' | 'sales' | v3 | | |");
  ASSERT_EQ(r.outputs.size(), 1u);
  EXPECT_EQ(r.outputs[0].visuals.size(), 2u);
}

// Name-derivation operators.
TEST_F(ZqlExecutorTest, MinusIntersectIndexSliceRange) {
  ZqlResult r = Run(
      "f1 | 'year' | 'sales' | v1 <- 'product'.* | | |\n"
      "f2 | 'year' | 'sales' | 'product'.'desk' | | |\n"
      "*f3=f1-f2 | | | | |\n"
      "*f4=f1^f2 | | | | |\n"
      "*f5=f1[2:3] | | | | |\n"
      "*f6=f1.range | | | | |");
  EXPECT_EQ(r.Find("f3")->visuals.size(), 2u);  // chair, stapler
  EXPECT_EQ(r.Find("f4")->visuals.size(), 1u);  // desk
  EXPECT_EQ(r.Find("f5")->visuals.size(), 2u);  // desk, stapler
  EXPECT_EQ(r.Find("f6")->visuals.size(), 3u);  // already distinct
  EXPECT_EQ(r.Find("f4")->visuals[0].slices[0].value, Value::Str("desk"));
}

// Constraints with a variable range (Table 3.18).
TEST_F(ZqlExecutorTest, RangeInConstraints) {
  ZqlResult r = Run(
      "f1 | 'year' | 'sales' | v1 <- 'product'.* | location='US' | | v2 <- "
      "argmax_v1[k=2] T(f1)\n"
      "*f2 | 'year' | 'profit' | | product IN (v2.range) | |");
  ASSERT_EQ(r.outputs[0].visuals.size(), 1u);
  // US trends: chair +, stapler +, desk -. Top-2: stapler & chair.
  // Combined profit (all locations) for those two:
  // 2014: 5+3+5=13, 2015: 6+2+7=15, 2016: 7+1+9=17.
  EXPECT_EQ(r.outputs[0].visuals[0].ys(), (std::vector<double>{13, 15, 17}));
}

// Representative process R(k, v, f).
TEST_F(ZqlExecutorTest, RepresentativeProcess) {
  ZqlResult r = Run(
      "f1 | 'year' | 'sales' | v1 <- 'product'.* | location='US' | | v2 <- "
      "R(2, v1, f1)\n"
      "*f2 | 'year' | 'sales' | v2 | location='US' | |");
  EXPECT_EQ(r.outputs[0].visuals.size(), 2u);
}

// Outlier pattern with nested iteration (Table 3.20 shape).
TEST_F(ZqlExecutorTest, NestedReducerProcess) {
  ZqlResult r = Run(
      "f1 | 'year' | 'sales' | v1 <- 'product'.* | location='US' | | v2 <- "
      "R(2, v1, f1)\n"
      "f2 | 'year' | 'sales' | v2 | location='US' | |\n"
      "f3 | 'year' | 'sales' | v1 | location='US' | | v3 <- argmax_v1[k=1] "
      "min_v2 D(f3, f2)\n"
      "*f4 | 'year' | 'sales' | v3 | location='US' | |");
  EXPECT_EQ(r.outputs[0].visuals.size(), 1u);
}

// Viz variable sets produce one visualization per spec.
TEST_F(ZqlExecutorTest, VizSet) {
  ZqlResult r = Run(
      "*f1 | 'year' | 'sales' | 'product'.'chair' | | t1 <- {bar, "
      "line}.(y=agg('sum')) |");
  ASSERT_EQ(r.outputs[0].visuals.size(), 2u);
  EXPECT_EQ(r.outputs[0].visuals[0].spec.chart, ChartType::kBar);
  EXPECT_EQ(r.outputs[0].visuals[1].spec.chart, ChartType::kLine);
}

// Attribute iteration in Z (Table 3.6 shape).
TEST_F(ZqlExecutorTest, AttributeIterationInZ) {
  ZqlResult r = Run(
      "*f1 | 'year' | 'sales' | z1.v1 <- {'product', 'location'}.* | | |");
  // 3 products + 2 locations = 5 slices.
  EXPECT_EQ(r.outputs[0].visuals.size(), 5u);
}

// Multiple processes in one cell (Table 3.21).
TEST_F(ZqlExecutorTest, MultipleProcessesPerRow) {
  Visualization drawn;
  drawn.x_attr = "year";
  drawn.y_attr = "sales";
  drawn.xs = {Value::Int(2014), Value::Int(2015), Value::Int(2016)};
  drawn.series = {{"sales", {1, 2, 3}}};
  ZqlResult r = Run(
      "-f1 | | | | | |\n"
      "f2 | 'year' | 'sales' | v1 <- 'product'.* | location='US' | | (v2 <- "
      "argmin_v1[k=1] D(f1, f2)), (v3 <- argmax_v1[k=1] D(f1, f2))\n"
      "*f3 | 'year' | 'sales' | v2 | location='US' | |\n"
      "*f4 | 'year' | 'sales' | v3 | location='US' | |",
      {}, {{"f1", drawn}});
  EXPECT_EQ(r.Find("f3")->visuals[0].slices[0].value, Value::Str("chair"));
  EXPECT_EQ(r.Find("f4")->visuals[0].slices[0].value, Value::Str("desk"));
}

// All four optimization levels must return identical results.
TEST_F(ZqlExecutorTest, OptimizationLevelsAgree) {
  const char* text =
      "f1 | 'year' | 'sales' | v1 <- 'product'.* | location='US' | | v2 <- "
      "argany_v1[t > 0] T(f1)\n"
      "f2 | 'year' | 'sales' | v1 | location='UK' | | v3 <- argany_v1[t < 0] "
      "T(f2)\n"
      "*f3 | 'year' | 'profit' | v4 <- (v2.range & v3.range) | | |";
  std::vector<ZqlResult> results;
  for (OptLevel level : {OptLevel::kNoOpt, OptLevel::kIntraLine,
                         OptLevel::kIntraTask, OptLevel::kInterTask}) {
    ZqlOptions opts;
    opts.optimization = level;
    results.push_back(Run(text, opts));
  }
  for (size_t i = 1; i < results.size(); ++i) {
    ASSERT_EQ(results[i].outputs.size(), results[0].outputs.size());
    const auto& a = results[0].outputs[0].visuals;
    const auto& b = results[i].outputs[0].visuals;
    ASSERT_EQ(a.size(), b.size()) << OptLevelToString(OptLevel(i));
    for (size_t v = 0; v < a.size(); ++v) {
      EXPECT_TRUE(a[v].SameSourceAs(b[v]));
      EXPECT_EQ(a[v].xs, b[v].xs);
      EXPECT_EQ(a[v].series, b[v].series);
    }
  }
  // Query counts shrink monotonically with optimization level.
  EXPECT_GT(results[0].stats.sql_queries, results[1].stats.sql_queries);
  EXPECT_GE(results[1].stats.sql_requests, results[3].stats.sql_requests);
}

// Named value sets (Table 5.1's P).
TEST_F(ZqlExecutorTest, NamedValueSet) {
  ZqlOptions opts;
  opts.named_sets.value_sets["P"] = {
      "product", {Value::Str("chair"), Value::Str("desk")}};
  ZqlResult r = Run("*f1 | 'year' | 'sales' | v1 <- P | location='US' | |",
                    opts);
  EXPECT_EQ(r.outputs[0].visuals.size(), 2u);
}

// Named attribute sets (Table 3.24's M).
TEST_F(ZqlExecutorTest, NamedAttrSet) {
  ZqlOptions opts;
  opts.named_sets.attr_sets["M"] = {"sales", "profit"};
  ZqlResult r = Run(
      "*f1 | 'year' | y1 <- M | 'product'.'chair' | location='US' | |", opts);
  ASSERT_EQ(r.outputs[0].visuals.size(), 2u);
}

// User-defined process functions.
TEST_F(ZqlExecutorTest, UserDefinedFunction) {
  ZqlOptions opts;
  opts.user_functions["PeakYear"] =
      [](const std::vector<const Visualization*>& args) {
        const auto& ys = args[0]->ys();
        size_t best = 0;
        for (size_t i = 1; i < ys.size(); ++i) {
          if (ys[i] > ys[best]) best = i;
        }
        return static_cast<double>(best);
      };
  ZqlResult r = Run(
      "f1 | 'year' | 'sales' | v1 <- 'product'.* | location='US' | | v2 <- "
      "argmax_v1[k=1] PeakYear(f1)\n"
      "*f2 | 'year' | 'sales' | v2 | location='US' | |",
      opts);
  // chair and stapler peak at index 2; argmax keeps the first (chair).
  EXPECT_EQ(r.outputs[0].visuals[0].slices[0].value, Value::Str("chair"));
}

// Error paths.
TEST_F(ZqlExecutorTest, UnknownVariableFails) {
  ZqlExecutor exec(&db_, "sales");
  auto r = exec.ExecuteText("*f1 | 'year' | 'sales' | vX | |");
  EXPECT_FALSE(r.ok());
}

TEST_F(ZqlExecutorTest, MissingUserInputFails) {
  ZqlExecutor exec(&db_, "sales");
  auto r = exec.ExecuteText(
      "-f1 | | | | |\n*f2 | 'year' | 'sales' | | | | v <- argmin_v[k=1] "
      "D(f1, f2)");
  EXPECT_FALSE(r.ok());
}

TEST_F(ZqlExecutorTest, DuplicateComponentFails) {
  ZqlExecutor exec(&db_, "sales");
  auto r = exec.ExecuteText(
      "*f1 | 'year' | 'sales' | | |\n*f1 | 'year' | 'profit' | | |");
  EXPECT_FALSE(r.ok());
}

TEST_F(ZqlExecutorTest, UnknownTableFails) {
  ZqlExecutor exec(&db_, "nope");
  EXPECT_FALSE(exec.ExecuteText("*f1 | 'year' | 'sales' | | |").ok());
}

// Roaring backend produces identical ZQL results.
TEST(ZqlExecutorBackendTest, RoaringMatchesScan) {
  auto table = testing::MakeTinySales();
  ScanDatabase scan;
  RoaringDatabase roaring;
  ZV_ASSERT_OK(scan.RegisterTable(table));
  ZV_ASSERT_OK(roaring.RegisterTable(table));
  const char* text =
      "f1 | 'year' | 'sales' | v1 <- 'product'.* | location='US' | | v2 <- "
      "argmax_v1[k=2] T(f1)\n"
      "*f2 | 'year' | 'profit' | v2 | location='US' | |";
  ZqlExecutor se(&scan, "sales"), re(&roaring, "sales");
  ZV_ASSERT_OK_AND_ASSIGN(ZqlResult a, se.ExecuteText(text));
  ZV_ASSERT_OK_AND_ASSIGN(ZqlResult b, re.ExecuteText(text));
  ASSERT_EQ(a.outputs[0].visuals.size(), b.outputs[0].visuals.size());
  for (size_t i = 0; i < a.outputs[0].visuals.size(); ++i) {
    EXPECT_EQ(a.outputs[0].visuals[i].series, b.outputs[0].visuals[i].series);
  }
}

}  // namespace
}  // namespace zv::zql
