/// \file trace_test.cc
/// \brief The tracing contract: a traced query's operator spans match its
/// physical plan step for step; results are byte-identical with tracing on
/// vs off across the full schedule matrix (staged/pipelined x shards 1/4 x
/// both backends); the serving layer's span tree carries queue_wait /
/// cache_lookup / execute in the right shape (including the cache-hit fast
/// path); the slow-query ring caps at kSlowRingCapacity most-recent-first;
/// the wire `metrics` request kind and trace response payloads round-trip;
/// and the Chrome trace_event export parses. Runs under the tsan/asan
/// ctest gates (tools/run_tsan.sh, tools/run_asan.sh): spans are opened
/// concurrently from the coordinator, the pipelined fetch thread, and the
/// shard workers, so the trace mutex race-checks with real traffic.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "api/protocol.h"
#include "api/service.h"
#include "common/json.h"
#include "common/metrics.h"
#include "common/strings.h"
#include "common/trace.h"
#include "engine/roaring_db.h"
#include "engine/scan_db.h"
#include "server/query_service.h"
#include "tests/test_util.h"
#include "workload/datasets.h"
#include "zql/executor.h"
#include "zql/parser.h"
#include "zql/plan.h"

namespace zv {
namespace {

using server::QueryHandle;
using server::QueryService;
using server::ServiceOptions;
using server::SessionId;

/// Canonical byte rendering of a result (identities + exact double bits),
/// so "byte-identical with tracing on" means what it says.
std::string Canon(const zql::ZqlResult& r) {
  std::string out;
  auto hex = [&](double d) {
    uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    out += StrFormat("%016llx,", static_cast<unsigned long long>(bits));
  };
  for (const auto& o : r.outputs) {
    out += o.name;
    out += '[';
    for (const auto& v : o.visuals) {
      out += v.Label();
      out += '(';
      for (const auto& x : v.xs) {
        out += x.ToString();
        out += ',';
      }
      for (const auto& s : v.series) {
        out += s.name;
        out += ':';
        for (double y : s.ys) hex(y);
      }
      out += ')';
    }
    out += ']';
  }
  return out;
}

/// The query shapes the matrix runs: a multi-row task pipeline and a
/// no-WHERE full-table aggregation (the bitmap fast path on Roaring).
const char* const kPipelineQuery =
    "f1 | 'year' | 'sales' | v1 <- 'product'.* | location='US' | "
    "bar.(y=agg('sum')) | v2 <- argany_v1[t > 0] T(f1)\n"
    "*f2 | 'year' | 'profit' | v3 <- v2.range | | bar.(y=agg('sum')) |";
const char* const kNoWhereQuery =
    "*f1 | 'year' | 'sales' | v1 <- 'location'.* | | bar.(y=agg('sum')) |";

std::shared_ptr<Table> MediumSales() {
  static std::shared_ptr<Table> table = [] {
    SalesDataOptions opts;
    opts.num_rows = 3000;
    opts.num_products = 10;
    return MakeSalesTable(opts);
  }();
  return table;
}

Result<zql::ZqlResult> RunZql(Database* db, const char* zql, bool pipelined,
                              size_t shards, Trace* trace) {
  zql::ZqlOptions opts;
  opts.pipelined_execution = pipelined;
  opts.shards = shards;
  opts.trace = trace;
  zql::ZqlExecutor exec(db, "sales", opts);
  return exec.ExecuteText(zql);
}

/// Counts spans named `name` anywhere in the (sub)tree.
size_t CountSpans(const TraceSpan& span, const std::string& name) {
  size_t n = span.name == name ? 1 : 0;
  for (const auto& child : span.children) n += CountSpans(*child, name);
  return n;
}

const char* StepSpanName(zql::PlanStep::Kind kind) {
  switch (kind) {
    case zql::PlanStep::Kind::kFetch: return "FetchOp";
    case zql::PlanStep::Kind::kFlush: return "Flush";
    case zql::PlanStep::Kind::kMaterialize: return "MaterializeOp";
    case zql::PlanStep::Kind::kScore: return "ScoreOp";
    case zql::PlanStep::Kind::kReduce: return "ReduceOp";
    case zql::PlanStep::Kind::kOutput: return "OutputOp";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Executor-level span tree
// ---------------------------------------------------------------------------

/// Staged execution: the "execute" span's children are exactly the plan's
/// steps, in order (a Flush step that had nothing buffered opens no span,
/// so Flush entries are allowed to be absent).
TEST(TraceGolden, StagedOperatorSpansMatchPlan) {
  ScanDatabase db;
  ZV_ASSERT_OK(db.RegisterTable(zv::testing::MakeTinySales()));
  for (const char* zql : {kPipelineQuery, kNoWhereQuery}) {
    Trace trace;
    ZV_ASSERT_OK_AND_ASSIGN(
        zql::ZqlResult result,
        RunZql(&db, zql, /*pipelined=*/false, /*shards=*/1, &trace));
    (void)result;

    const TraceSpan* exec = trace.root()->FindChild("execute");
    ASSERT_NE(exec, nullptr) << zql;
    EXPECT_GT(exec->duration_ms, 0.0);

    ZV_ASSERT_OK_AND_ASSIGN(zql::ZqlQuery query, zql::ParseQuery(zql));
    zql::ZqlOptions plan_opts;
    plan_opts.pipelined_execution = false;
    plan_opts.shards = 1;
    ZV_ASSERT_OK_AND_ASSIGN(zql::PhysicalPlan plan,
                            zql::BuildPhysicalPlan(query, plan_opts));

    // Greedy in-order match: every non-Flush step must produce a span in
    // plan order; Flush spans are optional per step but never reordered.
    size_t child = 0;
    for (const zql::PlanStep& step : plan.steps) {
      const char* expect = StepSpanName(step.kind);
      if (step.kind == zql::PlanStep::Kind::kFlush) {
        if (child < exec->children.size() &&
            exec->children[child]->name == expect) {
          ++child;
        }
        continue;
      }
      ASSERT_LT(child, exec->children.size())
          << zql << ": plan has more steps than spans";
      EXPECT_EQ(exec->children[child]->name, expect)
          << zql << " child " << child;
      ++child;
    }
    EXPECT_EQ(child, exec->children.size())
        << zql << ": trace has spans the plan does not";
  }
}

/// Pipelined execution traces its batch scans on the fetch thread
/// ("FetchBatch", track 1); the coordinator's operator spans still appear
/// in plan order around them.
TEST(TraceGolden, PipelinedFetchBatchOnTrack1) {
  ScanDatabase db;
  ZV_ASSERT_OK(db.RegisterTable(zv::testing::MakeTinySales()));
  Trace trace;
  ZV_ASSERT_OK_AND_ASSIGN(
      zql::ZqlResult result,
      RunZql(&db, kPipelineQuery, /*pipelined=*/true, /*shards=*/1, &trace));
  (void)result;

  const TraceSpan* exec = trace.root()->FindChild("execute");
  ASSERT_NE(exec, nullptr);
  size_t fetch_batches = 0;
  std::vector<std::string> coordinator;
  for (const auto& child : exec->children) {
    if (child->name == "FetchBatch") {
      EXPECT_EQ(child->track, 1);
      ++fetch_batches;
    } else {
      EXPECT_EQ(child->track, 0) << child->name;
      coordinator.push_back(child->name);
    }
  }
  EXPECT_GE(fetch_batches, 1u);
  // The coordinator walked FetchOp ... OutputOp; the final span closes
  // the plan.
  ASSERT_FALSE(coordinator.empty());
  EXPECT_EQ(coordinator.front(), "FetchOp");
  EXPECT_EQ(coordinator.back(), "OutputOp");
}

/// Chunk-sharded scans open one ChunkScanPass per dispatched statement,
/// annotated with the chunk fan-out.
TEST(TraceGolden, ShardedScanOpensChunkScanPass) {
  ScanDatabase db;
  ZV_ASSERT_OK(db.RegisterTable(MediumSales()));
  ZV_ASSERT_OK(db.RebuildChunkMap("sales", 800));  // 3000 rows -> 4 chunks
  Trace trace;
  ZV_ASSERT_OK_AND_ASSIGN(
      zql::ZqlResult result,
      RunZql(&db, kNoWhereQuery, /*pipelined=*/false, /*shards=*/4, &trace));
  (void)result;
  EXPECT_GE(CountSpans(*trace.root(), "ChunkScanPass"), 1u);
}

// ---------------------------------------------------------------------------
// Byte-identity: tracing is a pure observer
// ---------------------------------------------------------------------------

template <typename DbType>
void RunTraceIdentityMatrix() {
  DbType db;
  ZV_ASSERT_OK(db.RegisterTable(MediumSales()));
  ZV_ASSERT_OK(db.RebuildChunkMap("sales", 800));
  for (const char* zql : {kPipelineQuery, kNoWhereQuery}) {
    ZV_ASSERT_OK_AND_ASSIGN(
        zql::ZqlResult baseline,
        RunZql(&db, zql, /*pipelined=*/false, /*shards=*/1, nullptr));
    const std::string expect = Canon(baseline);
    for (bool pipelined : {false, true}) {
      for (size_t shards : {size_t{1}, size_t{4}}) {
        for (bool traced : {false, true}) {
          Trace trace;
          ZV_ASSERT_OK_AND_ASSIGN(
              zql::ZqlResult got,
              RunZql(&db, zql, pipelined, shards, traced ? &trace : nullptr));
          EXPECT_EQ(Canon(got), expect)
              << db.name() << " pipelined=" << pipelined
              << " shards=" << shards << " traced=" << traced;
        }
      }
    }
  }
}

TEST(TraceIdentity, ScanBackend) { RunTraceIdentityMatrix<ScanDatabase>(); }
TEST(TraceIdentity, RoaringBackend) {
  RunTraceIdentityMatrix<RoaringDatabase>();
}

// ---------------------------------------------------------------------------
// Service-level trace shape
// ---------------------------------------------------------------------------

TEST(ServiceTrace, SpanShapeAndAttrs) {
  MetricsRegistry registry;
  ServiceOptions opts;
  opts.metrics = &registry;
  opts.trace_all = 0;
  QueryService service(opts);
  ZV_ASSERT_OK(service.RegisterDataset(zv::testing::MakeTinySales()));
  ZV_ASSERT_OK_AND_ASSIGN(SessionId session, service.CreateSession());

  ZV_ASSERT_OK_AND_ASSIGN(
      QueryHandle handle,
      service.Submit(session, "sales", kNoWhereQuery, {}, /*trace=*/true));
  ZV_ASSERT_OK(handle.Wait());

  std::shared_ptr<const Trace> trace = handle.trace();
  ASSERT_NE(trace, nullptr);
  const TraceSpan& root = trace->root();
  EXPECT_EQ(root.name, "query");
  EXPECT_GT(root.duration_ms, 0.0);

  bool saw_dataset = false, saw_fingerprint = false;
  for (const auto& [key, value] : root.attrs) {
    if (key == "dataset") {
      saw_dataset = true;
      EXPECT_EQ(std::get<std::string>(value), "sales");
    }
    if (key == "fingerprint") {
      saw_fingerprint = true;
      EXPECT_EQ(std::get<std::string>(value), handle.fingerprint());
    }
  }
  EXPECT_TRUE(saw_dataset);
  EXPECT_TRUE(saw_fingerprint);

  // The admission wait is recorded from the submission instant (epoch).
  const TraceSpan* wait = root.FindChild("queue_wait");
  ASSERT_NE(wait, nullptr);
  EXPECT_EQ(wait->start_ms, 0.0);

  EXPECT_GE(CountSpans(root, "cache_lookup"), 1u);
  const TraceSpan* exec = root.FindChild("execute");
  ASSERT_NE(exec, nullptr);
  EXPECT_NE(exec->FindChild("OutputOp"), nullptr);
  // The service routes row selection through the shared-scan queue.
  EXPECT_GE(CountSpans(root, "SharedScanPass"), 1u);
}

TEST(ServiceTrace, CacheHitFastPathTrace) {
  MetricsRegistry registry;
  ServiceOptions opts;
  opts.metrics = &registry;
  QueryService service(opts);
  ZV_ASSERT_OK(service.RegisterDataset(zv::testing::MakeTinySales()));
  ZV_ASSERT_OK_AND_ASSIGN(SessionId session, service.CreateSession());

  ZV_ASSERT_OK_AND_ASSIGN(
      QueryHandle first,
      service.Submit(session, "sales", kNoWhereQuery, {}, /*trace=*/true));
  ZV_ASSERT_OK(first.Wait());
  ZV_ASSERT_OK_AND_ASSIGN(
      QueryHandle second,
      service.Submit(session, "sales", kNoWhereQuery, {}, /*trace=*/true));
  ZV_ASSERT_OK(second.Wait());
  EXPECT_EQ(second.stats().cache_hits, 1u);

  std::shared_ptr<const Trace> trace = second.trace();
  ASSERT_NE(trace, nullptr);
  const TraceSpan* lookup = trace->root().FindChild("cache_lookup");
  ASSERT_NE(lookup, nullptr);
  bool hit = false;
  for (const auto& [key, value] : lookup->attrs) {
    if (key == "hit") hit = std::get<bool>(value);
  }
  EXPECT_TRUE(hit);
  // A cache hit never executes.
  EXPECT_EQ(trace->root().FindChild("execute"), nullptr);
}

TEST(ServiceTrace, UntracedUnlessAskedOrTraceAll) {
  MetricsRegistry registry;
  ServiceOptions opts;
  opts.metrics = &registry;
  opts.trace_all = 0;
  {
    QueryService service(opts);
    ZV_ASSERT_OK(service.RegisterDataset(zv::testing::MakeTinySales()));
    ZV_ASSERT_OK_AND_ASSIGN(SessionId session, service.CreateSession());
    ZV_ASSERT_OK_AND_ASSIGN(QueryHandle handle,
                            service.Submit(session, "sales", kNoWhereQuery));
    ZV_ASSERT_OK(handle.Wait());
    EXPECT_EQ(handle.trace(), nullptr);
  }
  opts.trace_all = 1;
  {
    QueryService service(opts);
    ZV_ASSERT_OK(service.RegisterDataset(zv::testing::MakeTinySales()));
    ZV_ASSERT_OK_AND_ASSIGN(SessionId session, service.CreateSession());
    ZV_ASSERT_OK_AND_ASSIGN(QueryHandle handle,
                            service.Submit(session, "sales", kNoWhereQuery));
    ZV_ASSERT_OK(handle.Wait());
    EXPECT_NE(handle.trace(), nullptr);
  }
}

// ---------------------------------------------------------------------------
// Slow-query ring + service metrics
// ---------------------------------------------------------------------------

TEST(ServiceObservability, SlowRingCapsMostRecentFirst) {
  MetricsRegistry registry;
  ServiceOptions opts;
  opts.metrics = &registry;
  opts.slow_query_ms = 0.0;  // everything is "slow"
  QueryService service(opts);
  ZV_ASSERT_OK(service.RegisterDataset(zv::testing::MakeTinySales()));
  ZV_ASSERT_OK_AND_ASSIGN(SessionId session, service.CreateSession());

  const size_t total = QueryService::kSlowRingCapacity + 8;
  std::string last_fingerprint;
  for (size_t i = 0; i < total; ++i) {
    // Distinct queries (the x attribute varies), so none are cache hits.
    const std::string zql =
        i % 2 == 0
            ? StrFormat("*f1 | 'year' | 'sales' | v1 <- 'location'.* | "
                        "product='product%zu' | bar.(y=agg('sum')) |",
                        i % 10)
            : StrFormat("*f1 | 'product' | 'profit' | v1 <- 'location'.* | "
                        "year=%zu | bar.(y=agg('sum')) |",
                        2000 + i);
    ZV_ASSERT_OK_AND_ASSIGN(QueryHandle handle,
                            service.Submit(session, "sales", zql));
    ZV_ASSERT_OK(handle.Wait());
    last_fingerprint = handle.fingerprint();
  }

  EXPECT_EQ(service.stats().slow_queries, total);
  std::vector<QueryService::SlowQuery> slow = service.SlowQueries();
  ASSERT_EQ(slow.size(), QueryService::kSlowRingCapacity);
  EXPECT_EQ(slow.front().fingerprint, last_fingerprint);
  for (const auto& entry : slow) {
    EXPECT_EQ(entry.dataset, "sales");
    EXPECT_TRUE(entry.status.ok());
  }
}

TEST(ServiceObservability, RegistryRecordsCountersAndLatency) {
  MetricsRegistry registry;
  ServiceOptions opts;
  opts.metrics = &registry;
  QueryService service(opts);
  ZV_ASSERT_OK(service.RegisterDataset(zv::testing::MakeTinySales()));
  ZV_ASSERT_OK_AND_ASSIGN(SessionId session, service.CreateSession());

  for (int i = 0; i < 3; ++i) {
    ZV_ASSERT_OK_AND_ASSIGN(QueryHandle handle,
                            service.Submit(session, "sales", kNoWhereQuery));
    ZV_ASSERT_OK(handle.Wait());
  }

  EXPECT_EQ(registry.GetCounter("zv_queries_submitted")->value(), 3u);
  EXPECT_EQ(registry.GetCounter("zv_queries_completed")->value(), 3u);
  EXPECT_EQ(registry.GetCounter("zv_result_cache_hits")->value(), 2u);
  EXPECT_EQ(registry.GetCounter("zv_result_cache_misses")->value(), 1u);
  EXPECT_EQ(registry.GetHistogram("zv_query_latency_ms")->snapshot().count,
            3u);
  // The cold query executed, so the stage histograms saw it.
  EXPECT_GE(registry.GetHistogram("zv_fetch_stage_ms")->snapshot().count, 1u);
  EXPECT_GE(registry.GetHistogram("zv_score_stage_ms")->snapshot().count, 1u);
}

// ---------------------------------------------------------------------------
// Wire payloads
// ---------------------------------------------------------------------------

TEST(Wire, TracedResponseCarriesSpanTreeAndRoundTrips) {
  MetricsRegistry registry;
  ServiceOptions opts;
  opts.metrics = &registry;
  QueryService service(opts);
  ZV_ASSERT_OK(service.RegisterDataset(zv::testing::MakeTinySales()));
  ZV_ASSERT_OK_AND_ASSIGN(SessionId session, service.CreateSession());

  ZV_ASSERT_OK_AND_ASSIGN(api::QueryRequest request,
                          api::QueryRequest::FromText("sales", kNoWhereQuery));
  request.trace = true;
  // Request codec stability with the trace flag set.
  const Json encoded_req = api::EncodeRequest(request);
  ZV_ASSERT_OK_AND_ASSIGN(api::QueryRequest decoded_req,
                          api::DecodeRequest(encoded_req));
  EXPECT_TRUE(decoded_req.trace);
  EXPECT_EQ(api::EncodeRequest(decoded_req).Dump(), encoded_req.Dump());

  api::QueryResponse response = api::ExecuteRequest(service, session, request);
  ASSERT_TRUE(response.ok()) << response.error.message;
  ASSERT_FALSE(response.trace.is_null());
  const Json* name = response.trace.Find("name");
  ASSERT_NE(name, nullptr);
  EXPECT_EQ(name->as_string(), "query");

  // Response codec stability with a trace payload attached.
  const Json encoded = api::EncodeResponse(response);
  ZV_ASSERT_OK_AND_ASSIGN(api::QueryResponse decoded,
                          api::DecodeResponse(encoded));
  EXPECT_EQ(api::EncodeResponse(decoded).Dump(), encoded.Dump());
  EXPECT_FALSE(decoded.trace.is_null());
}

TEST(Wire, MetricsRequestKindSnapshotsRegistry) {
  MetricsRegistry registry;
  ServiceOptions opts;
  opts.metrics = &registry;
  opts.slow_query_ms = 0.0;
  QueryService service(opts);
  ZV_ASSERT_OK(service.RegisterDataset(zv::testing::MakeTinySales()));
  ZV_ASSERT_OK_AND_ASSIGN(SessionId session, service.CreateSession());
  ZV_ASSERT_OK_AND_ASSIGN(QueryHandle handle,
                          service.Submit(session, "sales", kNoWhereQuery));
  ZV_ASSERT_OK(handle.Wait());

  // Process-scoped: no dataset, no query.
  api::QueryRequest request;
  request.metrics = true;
  const Json encoded_req = api::EncodeRequest(request);
  ZV_ASSERT_OK_AND_ASSIGN(api::QueryRequest decoded_req,
                          api::DecodeRequest(encoded_req));
  EXPECT_TRUE(decoded_req.metrics);
  EXPECT_EQ(api::EncodeRequest(decoded_req).Dump(), encoded_req.Dump());

  api::QueryResponse response = api::ExecuteRequest(service, session, request);
  ASSERT_TRUE(response.ok()) << response.error.message;
  ASSERT_FALSE(response.metrics.is_null());
  ASSERT_NE(response.metrics.Find("counters"), nullptr);
  ASSERT_NE(response.metrics.Find("histograms"), nullptr);
  const Json* slow = response.metrics.Find("slow_queries");
  ASSERT_NE(slow, nullptr);
  ASSERT_TRUE(slow->is_array());
  EXPECT_GE(slow->size(), 1u);

  const Json* counters = response.metrics.Find("counters");
  const Json* submitted = counters->Find("zv_queries_submitted");
  ASSERT_NE(submitted, nullptr);
  EXPECT_EQ(submitted->as_int(), 1);

  // An unknown session is still rejected, matching execution semantics.
  api::QueryResponse bad =
      api::ExecuteRequest(service, SessionId{424242}, request);
  EXPECT_FALSE(bad.ok());
}

// ---------------------------------------------------------------------------
// Chrome export
// ---------------------------------------------------------------------------

TEST(ChromeExport, ParsesWithCompleteEvents) {
  ScanDatabase db;
  ZV_ASSERT_OK(db.RegisterTable(zv::testing::MakeTinySales()));
  Trace trace;
  ZV_ASSERT_OK_AND_ASSIGN(
      zql::ZqlResult result,
      RunZql(&db, kPipelineQuery, /*pipelined=*/false, /*shards=*/1, &trace));
  (void)result;

  const std::string chrome = ToChromeTrace(*trace.root());
  ZV_ASSERT_OK_AND_ASSIGN(Json parsed, Json::Parse(chrome));
  const Json* events = parsed.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_GE(events->size(), 2u);  // root + at least the execute span
  for (const Json& event : events->array()) {
    const Json* ph = event.Find("ph");
    ASSERT_NE(ph, nullptr);
    EXPECT_EQ(ph->as_string(), "X");
    EXPECT_NE(event.Find("name"), nullptr);
    EXPECT_NE(event.Find("ts"), nullptr);
    EXPECT_NE(event.Find("dur"), nullptr);
    EXPECT_NE(event.Find("tid"), nullptr);
  }
}

}  // namespace
}  // namespace zv
