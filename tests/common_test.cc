#include <gtest/gtest.h>

#include "common/csv.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/value.h"
#include "tests/test_util.h"

namespace zv {
namespace {

// --- Status / Result --------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::InvalidArgument("bad"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

Result<int> Doubler(Result<int> in) {
  ZV_ASSIGN_OR_RETURN(int v, std::move(in));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(Doubler(21).value(), 42);
  EXPECT_FALSE(Doubler(Status::Internal("boom")).ok());
}

// --- Value -------------------------------------------------------------------

TEST(ValueTest, NumericEqualityAcrossTypes) {
  EXPECT_EQ(Value::Int(3), Value::Double(3.0));
  EXPECT_NE(Value::Int(3), Value::Double(3.5));
  EXPECT_LT(Value::Int(3), Value::Double(3.5));
}

TEST(ValueTest, NullOrdersFirstStringsLast) {
  EXPECT_LT(Value::Null(), Value::Int(0));
  EXPECT_LT(Value::Int(1000000), Value::Str("a"));
  EXPECT_LT(Value::Str("a"), Value::Str("b"));
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int(7).Hash(), Value::Double(7.0).Hash());
  EXPECT_EQ(Value::Str("x").Hash(), Value::Str("x").Hash());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Int(42).ToString(), "42");
  EXPECT_EQ(Value::Double(42.0).ToString(), "42.0");
  EXPECT_EQ(Value::Str("hi").ToString(), "hi");
  EXPECT_EQ(Value::Null().ToString(), "NULL");
}

// --- strings ------------------------------------------------------------------

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  a b \t\n"), "a b");
  EXPECT_EQ(Trim(""), "");
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  const auto parts = Split("a||b", '|');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(StringsTest, SplitTopLevelRespectsNesting) {
  const auto parts = SplitTopLevel("f(a,b), {c,d}, 'e,f', g", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(Trim(parts[0]), "f(a,b)");
  EXPECT_EQ(Trim(parts[1]), "{c,d}");
  EXPECT_EQ(Trim(parts[2]), "'e,f'");
  EXPECT_EQ(Trim(parts[3]), "g");
}

TEST(StringsTest, LikeMatch) {
  EXPECT_TRUE(LikeMatch("02134", "02%"));
  EXPECT_TRUE(LikeMatch("02134", "02___"));
  EXPECT_FALSE(LikeMatch("02134", "02__"));
  EXPECT_TRUE(LikeMatch("abc", "%c"));
  EXPECT_TRUE(LikeMatch("abc", "%"));
  EXPECT_FALSE(LikeMatch("abc", "b%"));
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 3, "x"), "3-x");
}

// --- CSV -----------------------------------------------------------------------

TEST(CsvTest, RoundTrip) {
  CsvTable t;
  t.header = {"a", "b"};
  t.rows = {{"1", "x,y"}, {"2", "quote\"inside"}};
  const std::string text = WriteCsv(t);
  ZV_ASSERT_OK_AND_ASSIGN(CsvTable back, ParseCsv(text));
  EXPECT_EQ(back.header, t.header);
  EXPECT_EQ(back.rows, t.rows);
}

TEST(CsvTest, RejectsRaggedRows) {
  EXPECT_FALSE(ParseCsv("a,b\n1,2,3\n").ok());
}

TEST(CsvTest, RejectsUnterminatedQuote) {
  EXPECT_FALSE(ParseCsv("a\n\"oops").ok());
}

// --- RNG -------------------------------------------------------------------------

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, UniformDoubleInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NormalMoments) {
  Rng rng(9);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.Normal(10, 2));
  EXPECT_NEAR(Mean(xs), 10.0, 0.1);
  EXPECT_NEAR(StdDev(xs), 2.0, 0.1);
}

TEST(RngTest, ZipfSkewsTowardHead) {
  Rng rng(1);
  ZipfSampler zipf(100, 1.0);
  size_t head = 0, total = 20000;
  for (size_t i = 0; i < total; ++i) {
    if (zipf.Sample(rng) < 10) ++head;
  }
  // With s=1 the top-10 of 100 ranks hold ~56% of the mass.
  EXPECT_GT(head, total / 2);
}

// --- stats -------------------------------------------------------------------------

TEST(StatsTest, MeanVariance) {
  std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(Mean(xs), 5.0);
  EXPECT_NEAR(Variance(xs), 32.0 / 7.0, 1e-12);
}

TEST(StatsTest, FitLineExact) {
  // y = 3x + 1.
  std::vector<double> xs = {0, 1, 2, 3}, ys = {1, 4, 7, 10};
  const LinearFit fit = FitLine(xs, ys);
  EXPECT_NEAR(fit.slope, 3.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(StatsTest, FitLineDefaultsToIndexX) {
  std::vector<double> ys = {1, 4, 7, 10};
  EXPECT_NEAR(FitLine({}, ys).slope, 3.0, 1e-12);
}

TEST(StatsTest, IncompleteBetaKnownValues) {
  // I_x(1,1) = x.
  EXPECT_NEAR(IncompleteBeta(1, 1, 0.3), 0.3, 1e-9);
  // I_x(2,2) = 3x^2 - 2x^3.
  EXPECT_NEAR(IncompleteBeta(2, 2, 0.4), 3 * 0.16 - 2 * 0.064, 1e-9);
}

TEST(StatsTest, FDistSfSanity) {
  // Large F => small p.
  EXPECT_LT(FDistSf(50, 2, 30), 1e-6);
  // F = 0 => p = 1.
  EXPECT_DOUBLE_EQ(FDistSf(0, 2, 30), 1.0);
  // Known quantile: F(0.05; 2, 12) approx 3.885.
  EXPECT_NEAR(FDistSf(3.885, 2, 12), 0.05, 0.002);
}

TEST(StatsTest, AnovaDetectsSeparatedGroups) {
  std::vector<std::vector<double>> groups = {
      {1, 2, 1.5, 1.8}, {5, 5.5, 4.5, 5.2}, {9, 9.5, 8.5, 9.1}};
  const AnovaResult r = OneWayAnova(groups);
  EXPECT_GT(r.f_statistic, 50);
  EXPECT_LT(r.p_value, 1e-6);
}

TEST(StatsTest, AnovaIdenticalGroupsNotSignificant) {
  std::vector<std::vector<double>> groups = {
      {1, 2, 3, 4}, {1, 2, 3, 4}, {1, 2, 3, 4}};
  const AnovaResult r = OneWayAnova(groups);
  EXPECT_NEAR(r.f_statistic, 0.0, 1e-12);
  EXPECT_NEAR(r.p_value, 1.0, 1e-9);
}

TEST(StatsTest, StudentizedRangeKnownQuantile) {
  // Critical value q(0.05; k=3, df=30) ~ 3.49.
  const double sf = StudentizedRangeSf(3.49, 3, 30);
  EXPECT_NEAR(sf, 0.05, 0.01);
}

TEST(StatsTest, TukeySeparatesDistantGroups) {
  std::vector<std::vector<double>> groups = {
      {70, 75, 72, 74, 71, 73}, {115, 120, 110, 118, 113, 116},
      {170, 180, 175, 172, 178, 174}};
  const auto cmps = TukeyHsd(groups);
  ASSERT_EQ(cmps.size(), 3u);
  for (const auto& c : cmps) {
    EXPECT_TRUE(c.significant_01) << c.group_a << " vs " << c.group_b;
  }
}

TEST(StatsTest, TukeyCloseGroupsInsignificant) {
  std::vector<std::vector<double>> groups = {
      {10, 12, 11, 13, 9, 12}, {11, 13, 10, 12, 11, 14},
      {30, 31, 29, 32, 30, 31}};
  const auto cmps = TukeyHsd(groups);
  ASSERT_EQ(cmps.size(), 3u);
  // group 0 vs 1 close, both vs 2 far.
  for (const auto& c : cmps) {
    if (c.group_a == 0 && c.group_b == 1) {
      EXPECT_FALSE(c.significant_05);
    } else {
      EXPECT_TRUE(c.significant_01);
    }
  }
}

}  // namespace
}  // namespace zv
