/// \file param_engine_test.cc
/// \brief Parameterized property sweeps over the SQL engine: every
/// (backend, workload, query-shape) combination must satisfy the same
/// invariants, and the two backends must agree cell-for-cell.

#include <memory>
#include <tuple>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "engine/roaring_db.h"
#include "engine/scan_db.h"
#include "tests/test_util.h"
#include "workload/datasets.h"

namespace zv {
namespace {

enum class Backend { kScan, kRoaring };

std::unique_ptr<Database> MakeBackend(Backend b) {
  if (b == Backend::kScan) return std::make_unique<ScanDatabase>();
  return std::make_unique<RoaringDatabase>();
}

std::string BackendName(Backend b) {
  return b == Backend::kScan ? "Scan" : "Roaring";
}

std::shared_ptr<Table> SharedSales() {
  static std::shared_ptr<Table> table = [] {
    SalesDataOptions opts;
    opts.num_rows = 15000;
    opts.num_products = 12;
    return MakeSalesTable(opts);
  }();
  return table;
}

// ---------------------------------------------------------------------------
// Per-backend invariants.
// ---------------------------------------------------------------------------

class BackendInvariantTest : public ::testing::TestWithParam<Backend> {
 protected:
  void SetUp() override {
    db_ = MakeBackend(GetParam());
    ZV_ASSERT_OK(db_->RegisterTable(SharedSales()));
  }
  std::unique_ptr<Database> db_;
};

TEST_P(BackendInvariantTest, CountStarMatchesTableSize) {
  ZV_ASSERT_OK_AND_ASSIGN(ResultSet rs,
                          db_->ExecuteSql("SELECT COUNT(*) FROM sales"));
  EXPECT_EQ(rs.rows[0][0], Value::Int(15000));
}

TEST_P(BackendInvariantTest, GroupSumsAddUpToGlobalSum) {
  ZV_ASSERT_OK_AND_ASSIGN(ResultSet total,
                          db_->ExecuteSql("SELECT SUM(sales) FROM sales"));
  ZV_ASSERT_OK_AND_ASSIGN(
      ResultSet by_product,
      db_->ExecuteSql(
          "SELECT product, SUM(sales) FROM sales GROUP BY product"));
  double sum = 0;
  for (const auto& row : by_product.rows) sum += row[1].AsDouble();
  EXPECT_NEAR(sum, total.rows[0][0].AsDouble(),
              1e-6 * std::abs(total.rows[0][0].AsDouble()));
}

TEST_P(BackendInvariantTest, PredicateAndComplementPartition) {
  ZV_ASSERT_OK_AND_ASSIGN(
      ResultSet us,
      db_->ExecuteSql("SELECT COUNT(*) FROM sales WHERE country = 'US'"));
  ZV_ASSERT_OK_AND_ASSIGN(
      ResultSet not_us,
      db_->ExecuteSql("SELECT COUNT(*) FROM sales WHERE country != 'US'"));
  EXPECT_EQ(us.rows[0][0].AsInt() + not_us.rows[0][0].AsInt(), 15000);
}

TEST_P(BackendInvariantTest, DisjunctionIsUnionCount) {
  ZV_ASSERT_OK_AND_ASSIGN(
      ResultSet a, db_->ExecuteSql(
                       "SELECT COUNT(*) FROM sales WHERE size = 'small'"));
  ZV_ASSERT_OK_AND_ASSIGN(
      ResultSet b, db_->ExecuteSql(
                       "SELECT COUNT(*) FROM sales WHERE size = 'large'"));
  ZV_ASSERT_OK_AND_ASSIGN(
      ResultSet both,
      db_->ExecuteSql("SELECT COUNT(*) FROM sales WHERE size = 'small' OR "
                      "size = 'large'"));
  EXPECT_EQ(both.rows[0][0].AsInt(),
            a.rows[0][0].AsInt() + b.rows[0][0].AsInt());
}

TEST_P(BackendInvariantTest, InListEqualsDisjunction) {
  ZV_ASSERT_OK_AND_ASSIGN(
      ResultSet in_list,
      db_->ExecuteSql("SELECT COUNT(*) FROM sales WHERE product IN "
                      "('product0', 'product1', 'product2')"));
  ZV_ASSERT_OK_AND_ASSIGN(
      ResultSet disj,
      db_->ExecuteSql("SELECT COUNT(*) FROM sales WHERE product = "
                      "'product0' OR product = 'product1' OR product = "
                      "'product2'"));
  EXPECT_EQ(in_list.rows[0][0], disj.rows[0][0]);
}

TEST_P(BackendInvariantTest, NotInvertsSelection) {
  ZV_ASSERT_OK_AND_ASSIGN(
      ResultSet pos,
      db_->ExecuteSql("SELECT COUNT(*) FROM sales WHERE month = 1"));
  ZV_ASSERT_OK_AND_ASSIGN(
      ResultSet neg,
      db_->ExecuteSql("SELECT COUNT(*) FROM sales WHERE NOT (month = 1)"));
  EXPECT_EQ(pos.rows[0][0].AsInt() + neg.rows[0][0].AsInt(), 15000);
}

TEST_P(BackendInvariantTest, OrderByIsSorted) {
  ZV_ASSERT_OK_AND_ASSIGN(
      ResultSet rs,
      db_->ExecuteSql("SELECT year, SUM(sales) FROM sales GROUP BY year "
                      "ORDER BY year"));
  for (size_t i = 1; i < rs.num_rows(); ++i) {
    EXPECT_LT(rs.rows[i - 1][0], rs.rows[i][0]);
  }
}

TEST_P(BackendInvariantTest, LimitNeverExceeds) {
  ZV_ASSERT_OK_AND_ASSIGN(
      ResultSet rs,
      db_->ExecuteSql("SELECT product, COUNT(*) FROM sales GROUP BY product "
                      "ORDER BY product LIMIT 5"));
  EXPECT_EQ(rs.num_rows(), 5u);
}

TEST_P(BackendInvariantTest, AvgIsSumOverCount) {
  ZV_ASSERT_OK_AND_ASSIGN(
      ResultSet rs,
      db_->ExecuteSql("SELECT SUM(profit), COUNT(profit), AVG(profit) FROM "
                      "sales WHERE country = 'UK'"));
  const double sum = rs.rows[0][0].AsDouble();
  const double count = rs.rows[0][1].AsDouble();
  EXPECT_NEAR(rs.rows[0][2].AsDouble(), sum / count, 1e-9);
}

TEST_P(BackendInvariantTest, MinLeMaxAndWithinRange) {
  ZV_ASSERT_OK_AND_ASSIGN(
      ResultSet rs, db_->ExecuteSql("SELECT MIN(weight), MAX(weight), "
                                    "AVG(weight) FROM sales"));
  const double mn = rs.rows[0][0].AsDouble();
  const double mx = rs.rows[0][1].AsDouble();
  const double avg = rs.rows[0][2].AsDouble();
  EXPECT_LE(mn, mx);
  EXPECT_GE(avg, mn);
  EXPECT_LE(avg, mx);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendInvariantTest,
                         ::testing::Values(Backend::kScan, Backend::kRoaring),
                         [](const auto& suite_info) {
                           return BackendName(suite_info.param);
                         });

// ---------------------------------------------------------------------------
// Backend agreement across a grid of query shapes.
// ---------------------------------------------------------------------------

struct QueryShape {
  const char* label;
  const char* sql;
};

class BackendAgreementTest : public ::testing::TestWithParam<QueryShape> {};

TEST_P(BackendAgreementTest, IdenticalResults) {
  static ScanDatabase* scan = [] {
    auto* db = new ScanDatabase();
    EXPECT_TRUE(db->RegisterTable(SharedSales()).ok());
    return db;
  }();
  static RoaringDatabase* roaring = [] {
    auto* db = new RoaringDatabase();
    EXPECT_TRUE(db->RegisterTable(SharedSales()).ok());
    return db;
  }();
  ZV_ASSERT_OK_AND_ASSIGN(ResultSet a, scan->ExecuteSql(GetParam().sql));
  ZV_ASSERT_OK_AND_ASSIGN(ResultSet b, roaring->ExecuteSql(GetParam().sql));
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.columns, b.columns);
  for (size_t i = 0; i < a.num_rows(); ++i) {
    for (size_t j = 0; j < a.rows[i].size(); ++j) {
      if (a.rows[i][j].is_numeric()) {
        EXPECT_NEAR(a.rows[i][j].AsDouble(), b.rows[i][j].AsDouble(),
                    1e-6 * (1 + std::abs(a.rows[i][j].AsDouble())));
      } else {
        EXPECT_EQ(a.rows[i][j], b.rows[i][j]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    QueryGrid, BackendAgreementTest,
    ::testing::Values(
        QueryShape{"SimpleAgg",
                   "SELECT year, SUM(sales) FROM sales GROUP BY year ORDER "
                   "BY year"},
        QueryShape{"TwoGroupCols",
                   "SELECT year, SUM(profit), product FROM sales GROUP BY "
                   "product, year ORDER BY product, year"},
        QueryShape{"EqPredicate",
                   "SELECT month, AVG(sales) FROM sales WHERE country = "
                   "'US' GROUP BY month ORDER BY month"},
        QueryShape{"NePredicate",
                   "SELECT month, COUNT(*) FROM sales WHERE country != 'US' "
                   "GROUP BY month ORDER BY month"},
        QueryShape{"InPredicate",
                   "SELECT product, MAX(sales) FROM sales WHERE product IN "
                   "('product3', 'product5') GROUP BY product ORDER BY "
                   "product"},
        QueryShape{"ConjDisj",
                   "SELECT year, COUNT(*) FROM sales WHERE (country = 'US' "
                   "OR country = 'UK') AND size != 'small' GROUP BY year "
                   "ORDER BY year"},
        QueryShape{"NumericResidual",
                   "SELECT product, COUNT(*) FROM sales WHERE sales > 150 "
                   "AND country = 'US' GROUP BY product ORDER BY product"},
        QueryShape{"Between",
                   "SELECT year, COUNT(*) FROM sales WHERE weight BETWEEN "
                   "20 AND 50 GROUP BY year ORDER BY year"},
        QueryShape{"Like",
                   "SELECT product, COUNT(*) FROM sales WHERE product LIKE "
                   "'product1%' GROUP BY product ORDER BY product"},
        QueryShape{"Projection",
                   "SELECT year, sales FROM sales WHERE product = "
                   "'product7' AND country = 'UK' ORDER BY year LIMIT 50"},
        QueryShape{"GlobalAggregates",
                   "SELECT COUNT(*), SUM(sales), MIN(profit), MAX(profit) "
                   "FROM sales"},
        QueryShape{"NotPredicate",
                   "SELECT size, COUNT(*) FROM sales WHERE NOT (size = "
                   "'medium') GROUP BY size ORDER BY size"}),
    [](const auto& suite_info) { return suite_info.param.label; });

// ---------------------------------------------------------------------------
// Selectivity sweep: agreement and monotone costs across predicates of
// varying selectivity (the Fig 7.5 axis).
// ---------------------------------------------------------------------------

class SelectivitySweepTest : public ::testing::TestWithParam<int> {};

TEST_P(SelectivitySweepTest, CountsConsistent) {
  static ScanDatabase* scan = [] {
    auto* db = new ScanDatabase();
    EXPECT_TRUE(db->RegisterTable(SharedSales()).ok());
    return db;
  }();
  static RoaringDatabase* roaring = [] {
    auto* db = new RoaringDatabase();
    EXPECT_TRUE(db->RegisterTable(SharedSales()).ok());
    return db;
  }();
  const int n_products = GetParam();
  std::string in_list;
  for (int i = 0; i < n_products; ++i) {
    if (i) in_list += ", ";
    in_list += "'product" + std::to_string(i) + "'";
  }
  const std::string sql =
      "SELECT COUNT(*) FROM sales WHERE product IN (" + in_list + ")";
  ZV_ASSERT_OK_AND_ASSIGN(ResultSet a, scan->ExecuteSql(sql));
  ZV_ASSERT_OK_AND_ASSIGN(ResultSet b, roaring->ExecuteSql(sql));
  EXPECT_EQ(a.rows[0][0], b.rows[0][0]);
  // Selectivity grows with the list: roughly n/12 of all rows.
  const double frac =
      a.rows[0][0].AsDouble() / static_cast<double>(15000);
  EXPECT_NEAR(frac, n_products / 12.0, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Selectivities, SelectivitySweepTest,
                         ::testing::Values(1, 2, 4, 8, 12));

}  // namespace
}  // namespace zv
