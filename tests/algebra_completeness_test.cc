/// \file algebra_completeness_test.cc
/// \brief Checkable core of Theorem 1 (V EC_{T,D,R}(ZQL)): for every visual
/// exploration algebra operator, a ZQL query produces the same ordered set
/// of visualizations.
///
/// The Lemma 2–11 proofs construct ZQL mechanically from filtering visual
/// components; here each operator is paired with the natural ZQL expression
/// of the same operation (semantically equivalent to the proof's
/// construction, executable end-to-end), and the two sides are compared on
/// rendered visualization data, in order.

#include <gtest/gtest.h>

#include "algebra/operators.h"
#include "algebra/visual.h"
#include "engine/scan_db.h"
#include "tasks/primitives.h"
#include "tests/test_util.h"
#include "zql/executor.h"

namespace zv {
namespace {

using algebra::AttrVal;
using algebra::MakeVisualUniverse;
using algebra::RenderVisualSource;
using algebra::SigmaV;
using algebra::SwapTarget;
using algebra::VisualGroup;
using algebra::VisualSource;
using algebra::VPredicate;

class CompletenessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = testing::MakeTinySales();
    ZV_ASSERT_OK(db_.RegisterTable(table_));
    auto u = MakeVisualUniverse(table_, {"year"}, {"sales", "profit"});
    ZV_ASSERT_OK(u.status());
    universe_ = std::move(u).value();
    lib_ = TaskLibrary::Default();
  }

  /// The running visual group: sales-vs-year per product in the US
  /// (paper Table 4.3).
  VisualGroup PerProductUs(const std::string& y = "sales") {
    std::vector<std::unique_ptr<VPredicate>> conj;
    conj.push_back(VPredicate::XEquals("year"));
    conj.push_back(VPredicate::YEquals(y));
    conj.push_back(VPredicate::AttrIsStar(universe_.FindAttr("year")));
    conj.push_back(VPredicate::AttrIsStar(universe_.FindAttr("product"),
                                          /*negated=*/true));
    conj.push_back(VPredicate::AttrEquals(universe_.FindAttr("location"),
                                          Value::Str("US")));
    conj.push_back(VPredicate::AttrIsStar(universe_.FindAttr("sales")));
    conj.push_back(VPredicate::AttrIsStar(universe_.FindAttr("profit")));
    auto theta = VPredicate::And(std::move(conj));
    return SigmaV(universe_, *theta);
  }

  /// Renders every source of a group.
  std::vector<Visualization> Render(const VisualGroup& g) {
    std::vector<Visualization> out;
    for (const VisualSource& src : g.sources) {
      auto viz = RenderVisualSource(g, src);
      EXPECT_TRUE(viz.ok()) << viz.status().ToString();
      out.push_back(std::move(viz).value());
    }
    return out;
  }

  /// Runs ZQL text and returns the visuals of output `name`.
  std::vector<Visualization> RunZql(const std::string& text,
                                    const std::string& name = "") {
    zql::ZqlExecutor exec(&db_, "sales");
    auto r = exec.ExecuteText(text);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    if (!r.ok()) return {};
    if (name.empty()) return r->outputs.back().visuals;
    const zql::ZqlOutput* o = r->Find(name);
    EXPECT_NE(o, nullptr);
    return o ? o->visuals : std::vector<Visualization>{};
  }

  /// Asserts both sides produce the same ordered data series.
  void ExpectSameSeries(const std::vector<Visualization>& algebra_side,
                        const std::vector<Visualization>& zql_side) {
    ASSERT_EQ(algebra_side.size(), zql_side.size());
    for (size_t i = 0; i < algebra_side.size(); ++i) {
      EXPECT_EQ(algebra_side[i].xs, zql_side[i].xs) << "position " << i;
      ASSERT_FALSE(algebra_side[i].series.empty());
      ASSERT_FALSE(zql_side[i].series.empty());
      EXPECT_EQ(algebra_side[i].series[0].ys, zql_side[i].series[0].ys)
          << "position " << i;
    }
  }

  std::shared_ptr<Table> table_;
  ScanDatabase db_;
  VisualGroup universe_;
  TaskLibrary lib_;
};

// Lemma 2: σv — selection (the ZQL visual component expresses any σv over
// the visual universe).
TEST_F(CompletenessTest, SigmaV) {
  const VisualGroup v = PerProductUs();
  const auto zql = RunZql(
      "*f1 | 'year' | 'sales' | v1 <- 'product'.* | location='US' | "
      "bar.(y=agg('sum')) |");
  ExpectSameSeries(Render(v), zql);
}

// Lemma 2, disjunction case: σ_{product='chair' ∨ product='desk'}.
TEST_F(CompletenessTest, SigmaVDisjunction) {
  std::vector<std::unique_ptr<VPredicate>> disj;
  disj.push_back(VPredicate::AttrEquals(universe_.FindAttr("product"),
                                        Value::Str("chair")));
  disj.push_back(VPredicate::AttrEquals(universe_.FindAttr("product"),
                                        Value::Str("desk")));
  auto filter = VPredicate::Or(std::move(disj));
  const VisualGroup v = SigmaV(PerProductUs(), *filter);
  const auto zql = RunZql(
      "*f1 | 'year' | 'sales' | v1 <- 'product'.{'chair','desk'} | "
      "location='US' | bar.(y=agg('sum')) |");
  ExpectSameSeries(Render(v), zql);
}

// Lemma 2, negation case: σ_{product≠'stapler'}.
TEST_F(CompletenessTest, SigmaVNegation) {
  auto filter = VPredicate::AttrEquals(universe_.FindAttr("product"),
                                       Value::Str("stapler"),
                                       /*negated=*/true);
  const VisualGroup v = SigmaV(PerProductUs(), *filter);
  const auto zql = RunZql(
      "*f1 | 'year' | 'sales' | v1 <- 'product'.(* - 'stapler') | "
      "location='US' | bar.(y=agg('sum')) |");
  ExpectSameSeries(Render(v), zql);
}

// Lemma 3: τv — sort by F(T) (Table 4.13's construction uses
// argmin[k=∞] + reorder; .order is the same mechanism).
TEST_F(CompletenessTest, TauV) {
  ZV_ASSERT_OK_AND_ASSIGN(VisualGroup sorted,
                          algebra::TauV(PerProductUs(), lib_.trend));
  const auto zql = RunZql(
      "f1 | 'year' | 'sales' | v1 <- 'product'.* | location='US' | | u1 <- "
      "argmin_v1[k=inf] T(f1)\n"
      "*f2=f1.order | | | u1 -> | | |");
  ExpectSameSeries(Render(sorted), zql);
}

// Lemma 4: µv[a:b] — limit (Table 4.14: f2=f1[a:b]).
TEST_F(CompletenessTest, MuV) {
  const VisualGroup sliced = algebra::MuV(PerProductUs(), 2, 3);
  const auto zql = RunZql(
      "f1 | 'year' | 'sales' | v1 <- 'product'.* | location='US' | |\n"
      "*f2=f1[2:3] | | | | |");
  ExpectSameSeries(Render(sliced), zql);
}

// Lemma 5: ζv — representatives (Table 4.15: R(k, v, f)).
TEST_F(CompletenessTest, ZetaV) {
  ZV_ASSERT_OK_AND_ASSIGN(
      VisualGroup reps,
      algebra::ZetaV(PerProductUs(), lib_.representatives, 2));
  const auto zql = RunZql(
      "f1 | 'year' | 'sales' | v1 <- 'product'.* | location='US' | | v2 <- "
      "R(2, v1, f1)\n"
      "*f2 | 'year' | 'sales' | v2 | location='US' | |");
  ExpectSameSeries(Render(reps), zql);
}

// Lemma 6: δv — dedup (Table 4.16: f2=f1.range).
TEST_F(CompletenessTest, DeltaV) {
  ZV_ASSERT_OK_AND_ASSIGN(VisualGroup doubled,
                          algebra::UnionV(PerProductUs(), PerProductUs()));
  const VisualGroup deduped = algebra::DeltaV(doubled);
  const auto zql = RunZql(
      "f1 | 'year' | 'sales' | v1 <- 'product'.* | location='US' | |\n"
      "f2 | 'year' | 'sales' | v1 | location='US' | |\n"
      "f3=f1+f2 | | | | |\n"
      "*f4=f3.range | | | | |");
  ExpectSameSeries(Render(deduped), zql);
}

// Lemma 7: ∪v (Table 4.17: f3=f1+f2).
TEST_F(CompletenessTest, UnionV) {
  ZV_ASSERT_OK_AND_ASSIGN(
      VisualGroup both,
      algebra::UnionV(PerProductUs("sales"), PerProductUs("profit")));
  const auto zql = RunZql(
      "f1 | 'year' | 'sales' | v1 <- 'product'.* | location='US' | |\n"
      "f2 | 'year' | 'profit' | v1 | location='US' | |\n"
      "*f3=f1+f2 | | | | |");
  ExpectSameSeries(Render(both), zql);
}

// Lemma 8: \v (Table 4.18: f3=f1-f2); ∩v analogous via ^.
TEST_F(CompletenessTest, DiffAndIntersectV) {
  const VisualGroup all = PerProductUs();
  // U = just the desk visualization.
  auto desk_pred = VPredicate::AttrEquals(universe_.FindAttr("product"),
                                          Value::Str("desk"));
  const VisualGroup desk = SigmaV(all, *desk_pred);
  ZV_ASSERT_OK_AND_ASSIGN(VisualGroup diff, algebra::DiffV(all, desk));
  ZV_ASSERT_OK_AND_ASSIGN(VisualGroup inter, algebra::IntersectV(all, desk));
  const char* text =
      "f1 | 'year' | 'sales' | v1 <- 'product'.* | location='US' | |\n"
      "f2 | 'year' | 'sales' | 'product'.'desk' | location='US' | |\n"
      "*f3=f1-f2 | | | | |\n"
      "*f4=f1^f2 | | | | |";
  ExpectSameSeries(Render(diff), RunZql(text, "f3"));
  ExpectSameSeries(Render(inter), RunZql(text, "f4"));
}

// Lemma 9: βv — swap the Y axis (Table 4.20's case A=Y): start from sales
// visualizations, pivot every source to profit.
TEST_F(CompletenessTest, BetaVOnY) {
  const VisualGroup sales = PerProductUs("sales");
  const VisualGroup profit_one = algebra::MuV(PerProductUs("profit"), 1);
  ZV_ASSERT_OK_AND_ASSIGN(
      VisualGroup swapped,
      algebra::BetaV(sales, profit_one, SwapTarget::Y()));
  const auto zql = RunZql(
      "f1 | 'year' | 'sales' | v1 <- 'product'.* | location='US' | |\n"
      "*f2 | 'year' | 'profit' | v1 | location='US' | |");
  ExpectSameSeries(Render(swapped), zql);
}

// Lemma 10: φv — pairwise-matched distance sort (Table 4.22). Matching on
// product, compare each product's sales to its profit, sort ascending.
TEST_F(CompletenessTest, PhiV) {
  const VisualGroup sales = PerProductUs("sales");
  const VisualGroup profit = PerProductUs("profit");
  ZV_ASSERT_OK_AND_ASSIGN(
      VisualGroup sorted,
      algebra::PhiV(sales, profit, lib_.distance,
                    {SwapTarget::Attr(universe_.FindAttr("product"))}));
  const auto zql = RunZql(
      "f1 | 'year' | 'sales' | v1 <- 'product'.* | location='US' | |\n"
      "f2 | 'year' | 'profit' | v1 | location='US' | | u1 <- "
      "argmin_v1[k=inf] D(f1, f2)\n"
      "*f3=f1.order | | | u1 -> | | |");
  ExpectSameSeries(Render(sorted), zql);
}

// Lemma 11: ηv — distance to a single reference (Table 4.23).
TEST_F(CompletenessTest, EtaV) {
  const VisualGroup all = PerProductUs();
  auto stapler_pred = VPredicate::AttrEquals(universe_.FindAttr("product"),
                                             Value::Str("stapler"));
  const VisualGroup ref = SigmaV(all, *stapler_pred);
  ZV_ASSERT_OK_AND_ASSIGN(VisualGroup sorted,
                          algebra::EtaV(all, ref, lib_.distance));
  const auto zql = RunZql(
      "f1 | 'year' | 'sales' | 'product'.'stapler' | location='US' | |\n"
      "f2 | 'year' | 'sales' | v1 <- 'product'.* | location='US' | | u1 <- "
      "argmin_v1[k=inf] D(f2, f1)\n"
      "*f3=f2.order | | | u1 -> | | |");
  ExpectSameSeries(Render(sorted), zql);
}

// Lemma 1 sanity: a ZQL visual component can express an arbitrary visual
// group row-by-row (Table 4.4's construction, here with two hand-picked
// sources via literals + concatenation).
TEST_F(CompletenessTest, ArbitraryGroupViaLiterals) {
  VisualGroup g;
  g.relation = table_;
  g.attr_names = universe_.attr_names;
  VisualSource a;
  a.x = "year";
  a.y = "sales";
  a.attrs.assign(5, AttrVal::Star());
  a.attrs[1] = AttrVal::Of(Value::Str("desk"));
  VisualSource b = a;
  b.y = "profit";
  b.attrs[2] = AttrVal::Of(Value::Str("UK"));
  g.sources.push_back(a);
  g.sources.push_back(b);
  const auto zql = RunZql(
      "f1 | 'year' | 'sales' | 'product'.'desk' | | |\n"
      "f2 | 'year' | 'profit' | 'product'.'desk' | location='UK' | |\n"
      "*f3=f1+f2 | | | | |");
  ExpectSameSeries(Render(g), zql);
}

}  // namespace
}  // namespace zv
