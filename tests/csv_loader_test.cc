#include <gtest/gtest.h>

#include "engine/scan_db.h"
#include "storage/csv_loader.h"
#include "tests/test_util.h"
#include "zql/executor.h"

namespace zv {
namespace {

constexpr char kCsv[] =
    "year,product,region,sales,note\n"
    "2014,chair,east,10.5,ok\n"
    "2015,chair,west,11.0,\n"
    "2014,desk,east,20.25,fine\n"
    "2015,desk,west,19.75,ok\n";

TEST(CsvLoaderTest, InfersTypes) {
  ZV_ASSERT_OK_AND_ASSIGN(CsvTable csv, ParseCsv(kCsv));
  ZV_ASSERT_OK_AND_ASSIGN(Schema schema, InferCsvSchema(csv));
  // year: low-cardinality ints -> categorical; product/region/note:
  // strings -> categorical; sales: doubles -> measure.
  EXPECT_EQ(schema.column(0).type, ColumnType::kCategorical);
  EXPECT_EQ(schema.column(1).type, ColumnType::kCategorical);
  EXPECT_EQ(schema.column(3).type, ColumnType::kCategorical)
      << "4 distinct values is under the categorical threshold";
  EXPECT_EQ(schema.column(4).type, ColumnType::kCategorical);
}

TEST(CsvLoaderTest, HighCardinalityNumericBecomesMeasure) {
  CsvTable csv;
  csv.header = {"id", "value"};
  for (int i = 0; i < 200; ++i) {
    csv.rows.push_back(
        {std::to_string(i), std::to_string(i) + ".5"});
  }
  ZV_ASSERT_OK_AND_ASSIGN(Schema schema, InferCsvSchema(csv));
  EXPECT_EQ(schema.column(0).type, ColumnType::kInt);
  EXPECT_EQ(schema.column(1).type, ColumnType::kDouble);
}

TEST(CsvLoaderTest, OverridesWin) {
  ZV_ASSERT_OK_AND_ASSIGN(CsvTable csv, ParseCsv(kCsv));
  CsvLoadOptions opts;
  opts.overrides = {{"sales", ColumnType::kDouble}};
  ZV_ASSERT_OK_AND_ASSIGN(Schema schema, InferCsvSchema(csv, opts));
  EXPECT_EQ(schema.column(3).type, ColumnType::kDouble);
  opts.overrides = {{"nope", ColumnType::kDouble}};
  EXPECT_FALSE(InferCsvSchema(csv, opts).ok());
}

TEST(CsvLoaderTest, NumericCategoricalsKeepNumericValues) {
  ZV_ASSERT_OK_AND_ASSIGN(CsvTable csv, ParseCsv(kCsv));
  ZV_ASSERT_OK_AND_ASSIGN(auto table, TableFromCsv("t", csv));
  EXPECT_EQ(table->ValueAt(0, 0), Value::Int(2014));
  EXPECT_EQ(table->ValueAt(0, 1), Value::Str("chair"));
}

TEST(CsvLoaderTest, LoadedTableAnswersZql) {
  ZV_ASSERT_OK_AND_ASSIGN(CsvTable csv, ParseCsv(kCsv));
  CsvLoadOptions opts;
  opts.overrides = {{"sales", ColumnType::kDouble}};
  ZV_ASSERT_OK_AND_ASSIGN(auto table, TableFromCsv("t", csv));
  ScanDatabase db;
  ZV_ASSERT_OK(db.RegisterTable(table));
  zql::ZqlExecutor exec(&db, "t");
  ZV_ASSERT_OK_AND_ASSIGN(
      zql::ZqlResult r,
      exec.ExecuteText("*f1 | 'year' | 'sales' | v1 <- 'product'.* | | "
                       "bar.(y=agg('sum')) |"));
  ASSERT_EQ(r.outputs[0].visuals.size(), 2u);
  // chair: 2014 -> 10.5, 2015 -> 11.0 (sales stayed numeric through the
  // categorical dictionary).
  EXPECT_EQ(r.outputs[0].visuals[0].ys(), (std::vector<double>{10.5, 11.0}));
}

TEST(CsvLoaderTest, MissingFileFails) {
  EXPECT_FALSE(TableFromCsvFile("t", "/no/such/file.csv").ok());
}

TEST(ZqlSqlTraceTest, TraceShowsParagraph51Shape) {
  ZV_ASSERT_OK_AND_ASSIGN(CsvTable csv, ParseCsv(kCsv));
  ZV_ASSERT_OK_AND_ASSIGN(auto table, TableFromCsv("t", csv));
  ScanDatabase db;
  ZV_ASSERT_OK(db.RegisterTable(table));
  std::vector<std::string> trace;
  zql::ZqlOptions opts;
  opts.sql_trace = &trace;
  zql::ZqlExecutor exec(&db, "t", opts);
  ZV_ASSERT_OK(exec.ExecuteText("*f1 | 'year' | 'sales' | v1 <- 'product'.* "
                                "| region='east' | bar.(y=agg('sum')) |")
                   .status());
  ASSERT_EQ(trace.size(), 1u);
  // The §5.1 translation: SELECT x, z, agg(y) ... WHERE z IN ... GROUP BY
  // x, z ORDER BY z, x.
  EXPECT_EQ(trace[0],
            "SELECT year, product, SUM(sales) FROM t WHERE product IN "
            "('chair', 'desk') AND region = 'east' GROUP BY year, product "
            "ORDER BY product, year");
}

}  // namespace
}  // namespace zv
