/// \file param_roaring_test.cc
/// \brief Parameterized property sweeps over the Roaring bitmap across
/// density regimes (array / bitmap / run containers) and universe sizes:
/// set-algebra laws must hold in every representation.

#include <set>
#include <tuple>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "roaring/roaring.h"

namespace zv::roaring {
namespace {

struct DensityCase {
  const char* label;
  uint32_t universe;
  uint32_t count;
  bool run_optimize;
};

class RoaringDensityTest : public ::testing::TestWithParam<DensityCase> {
 protected:
  RoaringBitmap Random(uint64_t seed) const {
    const DensityCase& c = GetParam();
    Rng rng(seed);
    std::vector<uint32_t> vals;
    vals.reserve(c.count);
    for (uint32_t i = 0; i < c.count; ++i) {
      vals.push_back(static_cast<uint32_t>(rng.Uniform(c.universe)));
    }
    RoaringBitmap bm = RoaringBitmap::FromValues(vals);
    if (c.run_optimize) bm.RunOptimize();
    return bm;
  }

  static std::set<uint32_t> AsSet(const RoaringBitmap& bm) {
    std::set<uint32_t> out;
    bm.ForEach([&out](uint32_t v) { out.insert(v); });
    return out;
  }
};

TEST_P(RoaringDensityTest, CardinalityMatchesIteration) {
  const RoaringBitmap a = Random(1);
  EXPECT_EQ(a.Cardinality(), AsSet(a).size());
}

TEST_P(RoaringDensityTest, DoubleComplementIsIdentity) {
  const RoaringBitmap a = Random(2);
  const RoaringBitmap all = RoaringBitmap::FromRange(0, GetParam().universe);
  const RoaringBitmap complement = RoaringBitmap::AndNot(all, a);
  const RoaringBitmap back = RoaringBitmap::AndNot(all, complement);
  EXPECT_TRUE(a == back);
}

TEST_P(RoaringDensityTest, DeMorgan) {
  const RoaringBitmap a = Random(3), b = Random(4);
  const RoaringBitmap all = RoaringBitmap::FromRange(0, GetParam().universe);
  // ¬(a ∪ b) == ¬a ∩ ¬b
  const RoaringBitmap lhs =
      RoaringBitmap::AndNot(all, RoaringBitmap::Or(a, b));
  const RoaringBitmap rhs = RoaringBitmap::And(
      RoaringBitmap::AndNot(all, a), RoaringBitmap::AndNot(all, b));
  EXPECT_TRUE(lhs == rhs);
}

TEST_P(RoaringDensityTest, InclusionExclusion) {
  const RoaringBitmap a = Random(5), b = Random(6);
  EXPECT_EQ(RoaringBitmap::Or(a, b).Cardinality(),
            a.Cardinality() + b.Cardinality() -
                RoaringBitmap::AndCardinality(a, b));
}

TEST_P(RoaringDensityTest, XorIsSymmetricDifference) {
  const RoaringBitmap a = Random(7), b = Random(8);
  const RoaringBitmap via_xor = RoaringBitmap::Xor(a, b);
  const RoaringBitmap via_sets = RoaringBitmap::Or(
      RoaringBitmap::AndNot(a, b), RoaringBitmap::AndNot(b, a));
  EXPECT_TRUE(via_xor == via_sets);
}

TEST_P(RoaringDensityTest, AndIsCommutativeAndIdempotent) {
  const RoaringBitmap a = Random(9), b = Random(10);
  EXPECT_TRUE(RoaringBitmap::And(a, b) == RoaringBitmap::And(b, a));
  EXPECT_TRUE(RoaringBitmap::And(a, a) == a);
}

TEST_P(RoaringDensityTest, RankSelectConsistency) {
  const RoaringBitmap a = Random(11);
  // Rank at one-past-the-max equals cardinality; rank at 0 equals 0.
  EXPECT_EQ(a.Rank(0), a.Contains(0) ? 0u : 0u);
  EXPECT_EQ(a.Rank(GetParam().universe), a.Cardinality());
  // Rank is monotone.
  uint64_t prev = 0;
  for (uint32_t probe = 0; probe < GetParam().universe;
       probe += GetParam().universe / 7 + 1) {
    const uint64_t r = a.Rank(probe);
    EXPECT_GE(r, prev);
    prev = r;
  }
}

TEST_P(RoaringDensityTest, RemoveInvertsAdd) {
  RoaringBitmap a = Random(12);
  const uint64_t before = a.Cardinality();
  const uint32_t probe = GetParam().universe / 2;
  const bool had = a.Contains(probe);
  a.Add(probe);
  EXPECT_TRUE(a.Contains(probe));
  a.Remove(probe);
  EXPECT_FALSE(a.Contains(probe));
  EXPECT_EQ(a.Cardinality(), had ? before - 1 : before);
}

TEST_P(RoaringDensityTest, RunOptimizePreservesSet) {
  const RoaringBitmap a = Random(13);
  RoaringBitmap b = a;
  b.RunOptimize();
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.Cardinality(), b.Cardinality());
}

INSTANTIATE_TEST_SUITE_P(
    Densities, RoaringDensityTest,
    ::testing::Values(
        DensityCase{"SparseArrays", 1u << 22, 5'000, false},
        DensityCase{"MidArrays", 1u << 20, 60'000, false},
        DensityCase{"DenseBitmaps", 1u << 18, 200'000, false},
        DensityCase{"VeryDenseRuns", 1u << 16, 60'000, true},
        DensityCase{"SingleChunk", 1u << 16, 3'000, false},
        DensityCase{"HugeUniverse", 1u << 28, 50'000, false}),
    [](const auto& suite_info) { return suite_info.param.label; });

}  // namespace
}  // namespace zv::roaring
