/// \file param_roaring_test.cc
/// \brief Parameterized property sweeps over the Roaring bitmap across
/// density regimes (array / bitmap / run / inverted / all containers) and
/// universe sizes: set-algebra laws must hold in every representation, the
/// adaptive container must pick the canonical encoding at every density
/// threshold, and galloping intersection must match the linear walk.

#include <algorithm>
#include <set>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "roaring/container.h"
#include "roaring/roaring.h"

namespace zv::roaring {
namespace {

struct DensityCase {
  const char* label;
  uint32_t universe;
  uint32_t count;
  bool run_optimize;
};

class RoaringDensityTest : public ::testing::TestWithParam<DensityCase> {
 protected:
  RoaringBitmap Random(uint64_t seed) const {
    const DensityCase& c = GetParam();
    Rng rng(seed);
    std::vector<uint32_t> vals;
    vals.reserve(c.count);
    for (uint32_t i = 0; i < c.count; ++i) {
      vals.push_back(static_cast<uint32_t>(rng.Uniform(c.universe)));
    }
    RoaringBitmap bm = RoaringBitmap::FromValues(vals);
    if (c.run_optimize) bm.RunOptimize();
    return bm;
  }

  static std::set<uint32_t> AsSet(const RoaringBitmap& bm) {
    std::set<uint32_t> out;
    bm.ForEach([&out](uint32_t v) { out.insert(v); });
    return out;
  }
};

TEST_P(RoaringDensityTest, CardinalityMatchesIteration) {
  const RoaringBitmap a = Random(1);
  EXPECT_EQ(a.Cardinality(), AsSet(a).size());
}

TEST_P(RoaringDensityTest, DoubleComplementIsIdentity) {
  const RoaringBitmap a = Random(2);
  const RoaringBitmap all = RoaringBitmap::FromRange(0, GetParam().universe);
  const RoaringBitmap complement = RoaringBitmap::AndNot(all, a);
  const RoaringBitmap back = RoaringBitmap::AndNot(all, complement);
  EXPECT_TRUE(a == back);
}

TEST_P(RoaringDensityTest, DeMorgan) {
  const RoaringBitmap a = Random(3), b = Random(4);
  const RoaringBitmap all = RoaringBitmap::FromRange(0, GetParam().universe);
  // ¬(a ∪ b) == ¬a ∩ ¬b
  const RoaringBitmap lhs =
      RoaringBitmap::AndNot(all, RoaringBitmap::Or(a, b));
  const RoaringBitmap rhs = RoaringBitmap::And(
      RoaringBitmap::AndNot(all, a), RoaringBitmap::AndNot(all, b));
  EXPECT_TRUE(lhs == rhs);
}

TEST_P(RoaringDensityTest, InclusionExclusion) {
  const RoaringBitmap a = Random(5), b = Random(6);
  EXPECT_EQ(RoaringBitmap::Or(a, b).Cardinality(),
            a.Cardinality() + b.Cardinality() -
                RoaringBitmap::AndCardinality(a, b));
}

TEST_P(RoaringDensityTest, XorIsSymmetricDifference) {
  const RoaringBitmap a = Random(7), b = Random(8);
  const RoaringBitmap via_xor = RoaringBitmap::Xor(a, b);
  const RoaringBitmap via_sets = RoaringBitmap::Or(
      RoaringBitmap::AndNot(a, b), RoaringBitmap::AndNot(b, a));
  EXPECT_TRUE(via_xor == via_sets);
}

TEST_P(RoaringDensityTest, AndIsCommutativeAndIdempotent) {
  const RoaringBitmap a = Random(9), b = Random(10);
  EXPECT_TRUE(RoaringBitmap::And(a, b) == RoaringBitmap::And(b, a));
  EXPECT_TRUE(RoaringBitmap::And(a, a) == a);
}

TEST_P(RoaringDensityTest, RankSelectConsistency) {
  const RoaringBitmap a = Random(11);
  // Rank at one-past-the-max equals cardinality; rank at 0 equals 0.
  EXPECT_EQ(a.Rank(0), a.Contains(0) ? 0u : 0u);
  EXPECT_EQ(a.Rank(GetParam().universe), a.Cardinality());
  // Rank is monotone.
  uint64_t prev = 0;
  for (uint32_t probe = 0; probe < GetParam().universe;
       probe += GetParam().universe / 7 + 1) {
    const uint64_t r = a.Rank(probe);
    EXPECT_GE(r, prev);
    prev = r;
  }
}

TEST_P(RoaringDensityTest, RemoveInvertsAdd) {
  RoaringBitmap a = Random(12);
  const uint64_t before = a.Cardinality();
  const uint32_t probe = GetParam().universe / 2;
  const bool had = a.Contains(probe);
  a.Add(probe);
  EXPECT_TRUE(a.Contains(probe));
  a.Remove(probe);
  EXPECT_FALSE(a.Contains(probe));
  EXPECT_EQ(a.Cardinality(), had ? before - 1 : before);
}

TEST_P(RoaringDensityTest, RunOptimizePreservesSet) {
  const RoaringBitmap a = Random(13);
  RoaringBitmap b = a;
  b.RunOptimize();
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.Cardinality(), b.Cardinality());
}

INSTANTIATE_TEST_SUITE_P(
    Densities, RoaringDensityTest,
    ::testing::Values(
        DensityCase{"SparseArrays", 1u << 22, 5'000, false},
        DensityCase{"MidArrays", 1u << 20, 60'000, false},
        DensityCase{"DenseBitmaps", 1u << 18, 200'000, false},
        DensityCase{"VeryDenseRuns", 1u << 16, 60'000, true},
        DensityCase{"SingleChunk", 1u << 16, 3'000, false},
        DensityCase{"HugeUniverse", 1u << 28, 50'000, false}),
    [](const auto& suite_info) { return suite_info.param.label; });

// ---------------------------------------------------------------------------
// Adaptive container thresholds: at every cardinality straddling the
// array<->bitmap boundary (4096), the bitmap<->inverted boundary (61440),
// and the all-set sentinel (65536), incremental construction must land in
// the canonical representation and agree with a std::set oracle.
// ---------------------------------------------------------------------------

Container::Type CanonicalTypeFor(uint32_t card) {
  if (card == kChunkCardinality) return Container::Type::kAll;
  if (card >= kInvertedMinCardinality) return Container::Type::kInverted;
  if (card > kArrayMaxCardinality) return Container::Type::kBitmap;
  return Container::Type::kArray;
}

class ContainerThresholdTest : public ::testing::TestWithParam<uint32_t> {
 protected:
  /// Exactly `card` distinct values in the chunk, pseudo-random but
  /// deterministic per cardinality.
  static std::set<uint16_t> OracleValues(uint32_t card) {
    std::set<uint16_t> oracle;
    Rng rng(card + 1);
    while (oracle.size() < card) {
      oracle.insert(static_cast<uint16_t>(rng.Uniform(kChunkCardinality)));
    }
    return oracle;
  }
};

TEST_P(ContainerThresholdTest, IncrementalBuildIsCanonicalAndOracleEqual) {
  const uint32_t card = GetParam();
  const std::set<uint16_t> oracle = OracleValues(card);
  Container c;
  for (uint16_t v : oracle) ASSERT_TRUE(c.Add(v));
  EXPECT_EQ(c.Cardinality(), card);
  EXPECT_EQ(c.type(), CanonicalTypeFor(card)) << "card=" << card;
  std::vector<uint16_t> got;
  c.ForEach([&got](uint16_t v) { got.push_back(v); });
  EXPECT_TRUE(std::equal(got.begin(), got.end(), oracle.begin(),
                         oracle.end()))
      << "card=" << card;
  // Spot-check membership from both sides of the oracle.
  Rng rng(card + 99);
  for (int probe = 0; probe < 64; ++probe) {
    const uint16_t v = static_cast<uint16_t>(rng.Uniform(kChunkCardinality));
    EXPECT_EQ(c.Contains(v), oracle.count(v) > 0) << "v=" << v;
  }
}

TEST_P(ContainerThresholdTest, RemoveCrossesThresholdDownward) {
  const uint32_t card = GetParam();
  if (card == 0) return;
  const std::set<uint16_t> values = OracleValues(card);
  Container c;
  for (uint16_t v : values) c.Add(v);
  // Remove half the values; the container must re-canonicalize and still
  // match the oracle.
  std::set<uint16_t> oracle = values;
  size_t removed = 0;
  for (uint16_t v : values) {
    if (++removed % 2 == 0) continue;
    ASSERT_TRUE(c.Remove(v));
    oracle.erase(v);
  }
  EXPECT_EQ(c.Cardinality(), oracle.size());
  EXPECT_EQ(c.type(),
            CanonicalTypeFor(static_cast<uint32_t>(oracle.size())));
  std::vector<uint16_t> got;
  c.ForEach([&got](uint16_t v) { got.push_back(v); });
  EXPECT_TRUE(
      std::equal(got.begin(), got.end(), oracle.begin(), oracle.end()));
}

TEST_P(ContainerThresholdTest, BinaryOpsMatchOracleAcrossRepresentations) {
  const uint32_t card = GetParam();
  const std::set<uint16_t> sa = OracleValues(card);
  // Partner set at a *different* density so ops cross representations:
  // sparse partner for dense inputs and vice versa.
  const std::set<uint16_t> sb =
      OracleValues(card >= kInvertedMinCardinality ? 300 : 63000);
  Container a;
  for (uint16_t v : sa) a.Add(v);
  Container b;
  for (uint16_t v : sb) b.Add(v);

  std::set<uint16_t> and_o, or_o, andnot_o, xor_o;
  std::set_intersection(sa.begin(), sa.end(), sb.begin(), sb.end(),
                        std::inserter(and_o, and_o.end()));
  std::set_union(sa.begin(), sa.end(), sb.begin(), sb.end(),
                 std::inserter(or_o, or_o.end()));
  std::set_difference(sa.begin(), sa.end(), sb.begin(), sb.end(),
                      std::inserter(andnot_o, andnot_o.end()));
  std::set_symmetric_difference(sa.begin(), sa.end(), sb.begin(), sb.end(),
                                std::inserter(xor_o, xor_o.end()));

  const auto check = [](const Container& c, const std::set<uint16_t>& o,
                        const char* op) {
    EXPECT_EQ(c.Cardinality(), o.size()) << op;
    EXPECT_EQ(c.type(), CanonicalTypeFor(static_cast<uint32_t>(o.size())))
        << op;
    std::vector<uint16_t> got;
    c.ForEach([&got](uint16_t v) { got.push_back(v); });
    EXPECT_TRUE(std::equal(got.begin(), got.end(), o.begin(), o.end())) << op;
  };
  check(Container::And(a, b), and_o, "and");
  check(Container::Or(a, b), or_o, "or");
  check(Container::AndNot(a, b), andnot_o, "andnot");
  check(Container::Xor(a, b), xor_o, "xor");
  EXPECT_EQ(Container::AndCardinality(a, b), and_o.size());
}

TEST_P(ContainerThresholdTest, WindowIterationMatchesOracle) {
  const uint32_t card = GetParam();
  const std::set<uint16_t> oracle = OracleValues(card);
  Container c;
  for (uint16_t v : oracle) c.Add(v);
  const std::pair<uint16_t, uint16_t> windows[] = {
      {0, 65535}, {0, 0}, {100, 4000}, {60000, 65535}, {32768, 32768}};
  for (const auto& [lo, hi] : windows) {
    std::vector<uint16_t> got;
    c.ForEachInWindow(lo, hi,
                      [&got](uint16_t v) { got.push_back(v); });
    std::vector<uint16_t> want;
    for (auto it = oracle.lower_bound(lo); it != oracle.end() && *it <= hi;
         ++it) {
      want.push_back(*it);
    }
    EXPECT_EQ(got, want) << "window [" << lo << ", " << hi << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(
    DensityThresholds, ContainerThresholdTest,
    ::testing::Values(0u, 1u, 4095u, 4096u, 4097u, 30000u, 61439u, 61440u,
                      61441u, 65535u, 65536u),
    [](const auto& suite_info) {
      return "card" + std::to_string(suite_info.param);
    });

// ---------------------------------------------------------------------------
// Galloping vs linear intersection: identical output on every size skew,
// and the kAuto heuristic must agree with both.
// ---------------------------------------------------------------------------

using SkewCase = std::tuple<size_t, size_t>;

class GallopEquivalenceTest : public ::testing::TestWithParam<SkewCase> {};

TEST_P(GallopEquivalenceTest, AllWalkModesAgree) {
  const auto [na, nb] = GetParam();
  for (uint64_t seed : {1, 2, 3}) {
    Rng rng(seed * 1000 + na + nb);
    std::set<uint16_t> sa, sb;
    while (sa.size() < na) {
      sa.insert(static_cast<uint16_t>(rng.Uniform(kChunkCardinality)));
    }
    while (sb.size() < nb) {
      // Half the partner values overlap a's range bias so the gallop takes
      // both short and long strides.
      sb.insert(static_cast<uint16_t>(rng.Uniform(kChunkCardinality)));
    }
    const std::vector<uint16_t> a(sa.begin(), sa.end());
    const std::vector<uint16_t> b(sb.begin(), sb.end());
    std::vector<uint16_t> want;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(want));
    EXPECT_EQ(IntersectSorted(a, b, IntersectMode::kLinear), want);
    EXPECT_EQ(IntersectSorted(a, b, IntersectMode::kGalloping), want);
    EXPECT_EQ(IntersectSorted(a, b, IntersectMode::kAuto), want);
    // Symmetry: galloping picks the smaller side as the probe list.
    EXPECT_EQ(IntersectSorted(b, a, IntersectMode::kGalloping), want);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Skews, GallopEquivalenceTest,
    ::testing::Values(SkewCase{0, 100}, SkewCase{1, 1}, SkewCase{3, 4000},
                      SkewCase{100, 100}, SkewCase{50, 3000},
                      SkewCase{2000, 2100}, SkewCase{4096, 4096}),
    [](const auto& suite_info) {
      return "a" + std::to_string(std::get<0>(suite_info.param)) + "_b" +
             std::to_string(std::get<1>(suite_info.param));
    });

// ---------------------------------------------------------------------------
// Whole-bitmap densities that exercise the new representations through the
// public RoaringBitmap surface.
// ---------------------------------------------------------------------------

TEST(RoaringInvertedTest, FullChunkRangeUsesZeroBytes) {
  // [0, 65536) is one all-set chunk: the sentinel stores nothing.
  const RoaringBitmap full = RoaringBitmap::FromRange(0, 1u << 16);
  EXPECT_EQ(full.Cardinality(), 1u << 16);
  EXPECT_TRUE(full.Contains(0));
  EXPECT_TRUE(full.Contains(65535));
}

TEST(RoaringInvertedTest, NearFullRangeMatchesOracleUnderOps) {
  // 65536 - 100 values: inverted container (100 absent entries).
  RoaringBitmap dense = RoaringBitmap::FromRange(100, 1u << 16);
  ASSERT_EQ(dense.Cardinality(), (1u << 16) - 100);
  const RoaringBitmap sparse =
      RoaringBitmap::FromValues({1, 50, 99, 100, 101, 40000, 65535});
  const RoaringBitmap both = RoaringBitmap::And(dense, sparse);
  std::set<uint32_t> got;
  both.ForEach([&got](uint32_t v) { got.insert(v); });
  EXPECT_EQ(got, (std::set<uint32_t>{100, 101, 40000, 65535}));
  EXPECT_EQ(RoaringBitmap::AndCardinality(dense, sparse), 4u);
  const RoaringBitmap un = RoaringBitmap::Or(dense, sparse);
  EXPECT_EQ(un.Cardinality(), dense.Cardinality() + 3);
  // Range iteration across the inverted chunk.
  std::vector<uint32_t> window;
  dense.ForEachInRange(98, 104,
                       [&window](uint32_t v) { window.push_back(v); });
  EXPECT_EQ(window, (std::vector<uint32_t>{100, 101, 102, 103}));
}

TEST(RoaringInvertedTest, ConversionCounterAdvances) {
  const uint64_t before = ContainerConversions();
  Container c;
  for (uint32_t v = 0; v < kChunkCardinality; ++v) {
    c.Add(static_cast<uint16_t>(v));
  }
  EXPECT_EQ(c.type(), Container::Type::kAll);
  // array -> bitmap -> inverted -> all: at least three conversions.
  EXPECT_GE(ContainerConversions() - before, 3u);
}

}  // namespace
}  // namespace zv::roaring
