#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tasks/distance.h"
#include "tasks/kmeans.h"
#include "tasks/primitives.h"
#include "tasks/recommender.h"
#include "tests/test_util.h"

namespace zv {
namespace {

Visualization Series(std::vector<double> ys) {
  Visualization v;
  v.x_attr = "t";
  v.y_attr = "y";
  for (size_t i = 0; i < ys.size(); ++i) {
    v.xs.push_back(Value::Int(static_cast<int64_t>(i)));
  }
  v.series = {{"y", std::move(ys)}};
  return v;
}

// --- distances ---------------------------------------------------------------

TEST(DistanceTest, EuclideanIdentityAndSymmetry) {
  Visualization a = Series({1, 2, 3}), b = Series({3, 2, 1});
  EXPECT_DOUBLE_EQ(Distance(a, a), 0.0);
  EXPECT_DOUBLE_EQ(Distance(a, b), Distance(b, a));
  EXPECT_GT(Distance(a, b), 0.0);
}

TEST(DistanceTest, ScaleInvarianceUnderZScore) {
  // 10x-scaled versions of the same shape are identical after z-score.
  Visualization a = Series({1, 2, 3}), b = Series({10, 20, 30});
  EXPECT_NEAR(Distance(a, b), 0.0, 1e-9);
}

TEST(DistanceTest, NoNormalizationSeesScale) {
  Visualization a = Series({1, 2, 3}), b = Series({10, 20, 30});
  EXPECT_GT(Distance(a, b, DistanceMetric::kEuclidean, Normalization::kNone),
            1.0);
}

TEST(DistanceTest, DtwHandlesShift) {
  // DTW aligns a shifted peak more cheaply than pointwise L2.
  Visualization a = Series({0, 0, 5, 0, 0, 0});
  Visualization b = Series({0, 0, 0, 5, 0, 0});
  const double dtw = Distance(a, b, DistanceMetric::kDtw, Normalization::kNone);
  const double l2 =
      Distance(a, b, DistanceMetric::kEuclidean, Normalization::kNone);
  EXPECT_LT(dtw, l2);
}

TEST(DistanceTest, KlAndEmdZeroForIdentical) {
  Visualization a = Series({1, 4, 2, 8});
  EXPECT_NEAR(Distance(a, a, DistanceMetric::kKlDivergence), 0.0, 1e-9);
  EXPECT_NEAR(Distance(a, a, DistanceMetric::kEmd), 0.0, 1e-9);
}

TEST(DistanceTest, EmdSeesMassDisplacement) {
  Visualization a = Series({1, 0, 0, 0});
  Visualization b = Series({0, 0, 0, 1});
  Visualization c = Series({0, 1, 0, 0});
  EXPECT_GT(Distance(a, b, DistanceMetric::kEmd, Normalization::kNone),
            Distance(a, c, DistanceMetric::kEmd, Normalization::kNone));
}

TEST(DistanceTest, MisalignedXDomainsUseUnion) {
  Visualization a = Series({1, 2});
  Visualization b = Series({1, 2});
  b.xs = {Value::Int(1), Value::Int(2)};  // shifted by one
  EXPECT_GT(Distance(a, b, DistanceMetric::kEuclidean, Normalization::kNone),
            0.0);
}

TEST(DistanceTest, MetricNameRoundTrip) {
  for (DistanceMetric m :
       {DistanceMetric::kEuclidean, DistanceMetric::kDtw,
        DistanceMetric::kKlDivergence, DistanceMetric::kEmd}) {
    ZV_ASSERT_OK_AND_ASSIGN(DistanceMetric back,
                            DistanceMetricFromString(DistanceMetricToString(m)));
    EXPECT_EQ(back, m);
  }
  EXPECT_FALSE(DistanceMetricFromString("cosine").ok());
}

TEST(NormalizeTest, ZScoreMoments) {
  std::vector<double> ys = {1, 2, 3, 4, 5};
  NormalizeSeries(&ys, Normalization::kZScore);
  double sum = 0;
  for (double y : ys) sum += y;
  EXPECT_NEAR(sum, 0.0, 1e-9);
}

TEST(NormalizeTest, MinMaxRange) {
  std::vector<double> ys = {5, 10, 7};
  NormalizeSeries(&ys, Normalization::kMinMax);
  EXPECT_DOUBLE_EQ(ys[0], 0.0);
  EXPECT_DOUBLE_EQ(ys[1], 1.0);
}

TEST(NormalizeTest, ConstantSeriesSafe) {
  std::vector<double> ys = {4, 4, 4};
  NormalizeSeries(&ys, Normalization::kZScore);
  for (double y : ys) EXPECT_TRUE(std::isfinite(y));
}

// --- trend ------------------------------------------------------------------------

TEST(TrendTest, SignMatchesDirection) {
  EXPECT_GT(Trend(Series({1, 2, 3, 4})), 0);
  EXPECT_LT(Trend(Series({4, 3, 2, 1})), 0);
  EXPECT_NEAR(Trend(Series({2, 2, 2, 2})), 0, 1e-9);
}

TEST(TrendTest, ScaleInvariant) {
  EXPECT_NEAR(Trend(Series({1, 2, 3})), Trend(Series({100, 200, 300})), 1e-9);
}

// --- kmeans ------------------------------------------------------------------------

TEST(KMeansTest, SeparatesObviousClusters) {
  std::vector<std::vector<double>> pts;
  for (int i = 0; i < 10; ++i) pts.push_back({0.0 + i * 0.01, 0.0});
  for (int i = 0; i < 10; ++i) pts.push_back({10.0 + i * 0.01, 10.0});
  KMeansResult km = KMeans(pts, 2, 1);
  EXPECT_EQ(km.centroids.size(), 2u);
  // All points in the same half share an assignment.
  for (int i = 1; i < 10; ++i) EXPECT_EQ(km.assignment[i], km.assignment[0]);
  for (int i = 11; i < 20; ++i) {
    EXPECT_EQ(km.assignment[i], km.assignment[10]);
  }
  EXPECT_NE(km.assignment[0], km.assignment[10]);
  // Medoids come from their own clusters.
  EXPECT_LT(km.medoids[static_cast<size_t>(km.assignment[0])], 10u);
}

TEST(KMeansTest, DeterministicForSeed) {
  std::vector<std::vector<double>> pts;
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    pts.push_back({rng.UniformDouble(), rng.UniformDouble()});
  }
  KMeansResult a = KMeans(pts, 5, 7), b = KMeans(pts, 5, 7);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.medoids, b.medoids);
}

TEST(KMeansTest, KClampedToN) {
  std::vector<std::vector<double>> pts = {{0}, {1}};
  KMeansResult km = KMeans(pts, 10, 3);
  EXPECT_EQ(km.centroids.size(), 2u);
}

TEST(KMeansTest, EmptyInput) {
  KMeansResult km = KMeans({}, 3);
  EXPECT_TRUE(km.centroids.empty());
}

// --- representatives / outliers --------------------------------------------------------

TEST(RepresentativesTest, PicksOnePerCluster) {
  std::vector<Visualization> set;
  for (int i = 0; i < 8; ++i) set.push_back(Series({1, 2, 3, 4}));     // rising
  for (int i = 0; i < 8; ++i) set.push_back(Series({4, 3, 2, 1}));     // falling
  std::vector<const Visualization*> ptrs;
  for (const auto& v : set) ptrs.push_back(&v);
  auto reps = Representatives(ptrs, 2);
  ASSERT_EQ(reps.size(), 2u);
  const bool one_each = (reps[0] < 8) != (reps[1] < 8);
  EXPECT_TRUE(one_each);
}

TEST(OutlierTest, SpikeScoresHighest) {
  std::vector<Visualization> set;
  for (int i = 0; i < 10; ++i) set.push_back(Series({1, 2, 3, 4, 5}));
  set.push_back(Series({1, 9, 1, 9, 1}));  // the anomaly
  std::vector<const Visualization*> ptrs;
  for (const auto& v : set) ptrs.push_back(&v);
  auto scores = OutlierScores(ptrs, 2);
  size_t best = 0;
  for (size_t i = 1; i < scores.size(); ++i) {
    if (scores[i] > scores[best]) best = i;
  }
  EXPECT_EQ(best, 10u);
}

// --- mechanisms -------------------------------------------------------------------------

TEST(MechanismTest, ArgMinSortsAscending) {
  MechanismFilter f;
  auto idx = ApplyMechanism(Mechanism::kArgMin, {3, 1, 2}, f);
  EXPECT_EQ(idx, (std::vector<size_t>{1, 2, 0}));
}

TEST(MechanismTest, ArgMaxTopK) {
  MechanismFilter f;
  f.k = 2;
  auto idx = ApplyMechanism(Mechanism::kArgMax, {3, 1, 2, 5}, f);
  EXPECT_EQ(idx, (std::vector<size_t>{3, 0}));
}

TEST(MechanismTest, ThresholdAbove) {
  MechanismFilter f;
  f.t_above = 0.0;
  auto idx = ApplyMechanism(Mechanism::kArgAny, {-1, 2, 0, 3}, f);
  EXPECT_EQ(idx, (std::vector<size_t>{3, 1}));
}

TEST(MechanismTest, ThresholdBelow) {
  MechanismFilter f;
  f.t_below = 0.0;
  auto idx = ApplyMechanism(Mechanism::kArgMin, {-1, 2, -3, 1}, f);
  EXPECT_EQ(idx, (std::vector<size_t>{2, 0}));
}

TEST(MechanismTest, ArgAnyKeepsInputOrder) {
  MechanismFilter f;
  f.k = 3;
  auto idx = ApplyMechanism(Mechanism::kArgAny, {5, 4, 3, 2}, f);
  EXPECT_EQ(idx, (std::vector<size_t>{0, 1, 2}));
}

TEST(MechanismTest, StableTies) {
  MechanismFilter f;
  auto idx = ApplyMechanism(Mechanism::kArgMin, {1, 1, 1}, f);
  EXPECT_EQ(idx, (std::vector<size_t>{0, 1, 2}));
}

// --- recommender -------------------------------------------------------------------------

TEST(RecommenderTest, DiverseAndOrderedBySize) {
  std::vector<Visualization> set;
  for (int i = 0; i < 12; ++i) set.push_back(Series({1, 2, 3}));
  for (int i = 0; i < 4; ++i) set.push_back(Series({3, 2, 1}));
  std::vector<const Visualization*> ptrs;
  for (const auto& v : set) ptrs.push_back(&v);
  RecommenderOptions opts;
  opts.k = 2;
  auto recs = RecommendDiverse(ptrs, opts);
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_GE(recs[0].cluster_size, recs[1].cluster_size);
  EXPECT_EQ(recs[0].cluster_size, 12u);
}

TEST(RecommenderTest, EmptyCandidates) {
  EXPECT_TRUE(RecommendDiverse({}).empty());
}

}  // namespace
}  // namespace zv
