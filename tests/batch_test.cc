/// \file batch_test.cc
/// \brief The batched-execution contract (docs/architecture.md "Batched
/// execution"): results served through the shared-scan coordinator are
/// byte-identical to the per-query oracle across {batched, unbatched} ×
/// {1, 4} sessions × both backends × ZV_THREADS {1, 4} × ZV_SHARDS
/// {1, 4}. Plus: the fused multi-statement scanners select exactly what
/// solo scanners select, a cancelled member leaves its pass siblings
/// unaffected, a ReplaceDataset epoch bump mid-window isolates pre- and
/// post-bump queries on their own snapshots, binning pushdown reproduces
/// the client-side binner bit for bit on integer data, and a randomized
/// multi-session soak (ZV_SOAK_ITERS; the `stress` ctest configuration
/// runs it long) hammers submit/cancel/replace concurrently. Runs under
/// the tsan/asan ctest gates (tools/run_tsan.sh, tools/run_asan.sh): the
/// batch coordinator, its worker pool, the context pool, and the service
/// workers race-check together.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "common/parallel.h"
#include "engine/chunk_map.h"
#include "engine/roaring_db.h"
#include "engine/scan_db.h"
#include "engine/shared_scan.h"
#include "server/query_service.h"
#include "sql/parser.h"
#include "tests/test_util.h"
#include "workload/datasets.h"
#include "zql/executor.h"

namespace zv::zql {
namespace {

class ScopedThreads {
 public:
  explicit ScopedThreads(size_t n) { SetParallelThreads(n); }
  ~ScopedThreads() { SetParallelThreads(0); }
};

bool SameVisualization(const Visualization& a, const Visualization& b) {
  return a.x_attr == b.x_attr && a.y_attr == b.y_attr &&
         a.slices == b.slices && a.constraints == b.constraints &&
         a.spec == b.spec && a.xs == b.xs && a.series == b.series;
}

::testing::AssertionResult SameResult(const ZqlResult& a, const ZqlResult& b) {
  if (a.outputs.size() != b.outputs.size()) {
    return ::testing::AssertionFailure() << "output count mismatch";
  }
  for (size_t o = 0; o < a.outputs.size(); ++o) {
    if (a.outputs[o].name != b.outputs[o].name ||
        a.outputs[o].visuals.size() != b.outputs[o].visuals.size()) {
      return ::testing::AssertionFailure()
             << "output " << o << " shape mismatch";
    }
    for (size_t v = 0; v < a.outputs[o].visuals.size(); ++v) {
      if (!SameVisualization(a.outputs[o].visuals[v],
                             b.outputs[o].visuals[v])) {
        return ::testing::AssertionFailure()
               << "output " << a.outputs[o].name << " visual " << v << ": "
               << a.outputs[o].visuals[v].DebugString() << " vs "
               << b.outputs[o].visuals[v].DebugString();
      }
    }
  }
  return ::testing::AssertionSuccess();
}

/// Distinct query shapes whose row selections can share a pass: different
/// predicates (union-able conjuncts), a no-WHERE full scan (the Roaring
/// bitmap fast path), a scored pipeline, and a binned numeric x axis.
const char* const kQueries[] = {
    "*f1 | 'year' | 'sales' | v1 <- 'product'.* | | bar.(y=agg('sum')) |",
    "*f1 | 'year' | 'profit' | v1 <- 'product'.* | location='US' | "
    "bar.(y=agg('sum')) |",
    "*f1 | 'year' | 'sales' | 'location'.'UK' | | line.(y=agg('avg')) |",
    "f1 | 'year' | 'sales' | v1 <- 'location'.* | sales > 100 | "
    "bar.(y=agg('sum')) | v2 <- argmax_v1[k=1] T(f1)\n"
    "*f2 | 'year' | 'profit' | v2 | | bar.(y=agg('sum')) |",
    "*f1 | 'sales' | 'profit' | v1 <- 'location'.* | | "
    "bar.(x=bin(50), y=agg('sum')) |",
};
constexpr size_t kNumQueries = sizeof(kQueries) / sizeof(kQueries[0]);

std::shared_ptr<Table> MediumSales() {
  static std::shared_ptr<Table> table = [] {
    SalesDataOptions opts;
    opts.num_rows = 3000;
    opts.num_products = 10;
    return MakeSalesTable(opts);
  }();
  return table;
}

/// The unbatched oracle: a private executor, serial, unsharded, staged.
ZqlResult Oracle(Database* db, const char* zql) {
  ScopedThreads threads(1);
  ZqlOptions opts;
  opts.shards = 1;
  opts.pipelined_execution = false;
  ZqlExecutor exec(db, "sales", opts);
  Result<ZqlResult> r = exec.ExecuteText(zql);
  EXPECT_TRUE(r.ok()) << r.status().ToString() << " for " << zql;
  return r.ok() ? std::move(r).value() : ZqlResult{};
}

template <typename DbType>
void RunBatchIdentityMatrix() {
  auto table = MediumSales();
  std::vector<ZqlResult> oracle;
  {
    DbType db;
    ZV_ASSERT_OK(db.RegisterTable(table));
    ZV_ASSERT_OK(db.RebuildChunkMap("sales", 256));
    for (const char* zql : kQueries) oracle.push_back(Oracle(&db, zql));
  }
  for (bool shared : {false, true}) {
    for (size_t sessions : {size_t{1}, size_t{4}}) {
      for (size_t nthreads : {size_t{1}, size_t{4}}) {
        for (size_t shards : {size_t{1}, size_t{4}}) {
          ScopedThreads threads(nthreads);
          server::ServiceOptions sopts;
          sopts.result_cache = false;  // every submit must really execute
          sopts.shared_scans = shared;
          sopts.zql.shards = shards;
          sopts.max_inflight = 4;
          server::QueryService service(sopts);
          auto db = std::make_shared<DbType>();
          ZV_ASSERT_OK(db->RegisterTable(table));
          ZV_ASSERT_OK(db->RebuildChunkMap("sales", 256));
          ZV_ASSERT_OK(service.RegisterDataset(table, db));
          std::vector<server::SessionId> sids;
          for (size_t s = 0; s < sessions; ++s) {
            ZV_ASSERT_OK_AND_ASSIGN(server::SessionId sid,
                                    service.CreateSession());
            sids.push_back(sid);
          }
          std::vector<server::QueryHandle> handles;
          for (size_t i = 0; i < kNumQueries; ++i) {
            ZV_ASSERT_OK_AND_ASSIGN(
                server::QueryHandle h,
                service.Submit(sids[i % sids.size()], "sales", kQueries[i]));
            handles.push_back(h);
          }
          uint64_t batched_total = 0;
          for (size_t i = 0; i < handles.size(); ++i) {
            ZV_ASSERT_OK(handles[i].Wait());
            auto res = handles[i].result();
            ASSERT_NE(res, nullptr);
            EXPECT_TRUE(SameResult(oracle[i], *res))
                << "query " << i << " shared=" << shared
                << " sessions=" << sessions << " threads=" << nthreads
                << " shards=" << shards;
            batched_total += handles[i].stats().batched_scans;
          }
          if (shared) {
            EXPECT_GT(batched_total, 0u);
            EXPECT_GT(service.stats().batch_passes, 0u);
          } else {
            EXPECT_EQ(batched_total, 0u);
            EXPECT_EQ(service.stats().batch_passes, 0u);
          }
        }
      }
    }
  }
}

TEST(BatchTest, ScanBackendByteIdentityMatrix) {
  RunBatchIdentityMatrix<ScanDatabase>();
}

TEST(BatchTest, RoaringBackendByteIdentityMatrix) {
  RunBatchIdentityMatrix<RoaringDatabase>();
}

/// The fused multi-statement scanner primitives: PrepareMultiChunkScan +
/// per-chunk ScanRange selects, per statement, exactly the rows that
/// statement's solo ChunkScanner selects — on both backends (the base
/// engine fuses into one row loop; Roaring wraps per-statement scanners).
TEST(BatchTest, MultiScannerMatchesSoloSelection) {
  auto table = MediumSales();
  ScanDatabase scan_db;
  RoaringDatabase roaring_db;
  ZV_ASSERT_OK(scan_db.RegisterTable(table));
  ZV_ASSERT_OK(roaring_db.RegisterTable(table));
  const char* const sqls[] = {
      "SELECT year, SUM(sales) FROM sales GROUP BY year",
      "SELECT year, SUM(profit) FROM sales WHERE location = 'US' GROUP BY "
      "year",
      "SELECT year, SUM(profit) FROM sales WHERE location = 'UK' AND sales "
      "> 100 GROUP BY year",
  };
  std::vector<sql::SelectStatement> stmts;
  for (const char* text : sqls) {
    ZV_ASSERT_OK_AND_ASSIGN(sql::SelectStatement stmt, sql::ParseSelect(text));
    stmts.push_back(std::move(stmt));
  }
  std::vector<const sql::SelectStatement*> ptrs;
  for (const auto& s : stmts) ptrs.push_back(&s);
  for (Database* db : {static_cast<Database*>(&scan_db),
                       static_cast<Database*>(&roaring_db)}) {
    ZV_ASSERT_OK_AND_ASSIGN(std::unique_ptr<MultiChunkScanner> multi,
                            db->PrepareMultiChunkScan(ptrs));
    ASSERT_EQ(multi->num_statements(), stmts.size());
    const ChunkMap map = ChunkMap::Build(table->num_rows(), 170);
    std::vector<std::vector<uint32_t>> outs(stmts.size());
    for (size_t c = 0; c < map.num_chunks(); ++c) {
      const auto [begin, end] = map.chunk_range(c);
      ZV_ASSERT_OK(multi->ScanRange(begin, end, &outs));
    }
    for (size_t i = 0; i < stmts.size(); ++i) {
      ZV_ASSERT_OK_AND_ASSIGN(std::unique_ptr<ChunkScanner> solo,
                              db->PrepareChunkScan(stmts[i]));
      std::vector<uint32_t> rows;
      ZV_ASSERT_OK(solo->ScanRange(
          0, static_cast<uint32_t>(table->num_rows()), &rows));
      EXPECT_EQ(outs[i], rows) << db->name() << ": " << sqls[i];
    }
  }
}

/// The queue itself: one SelectRows call returns per-statement row lists
/// identical to solo scans; an empty table short-circuits without a pass.
TEST(BatchTest, QueueSelectionMatchesSoloScan) {
  auto table = MediumSales();
  ScanDatabase db;
  ZV_ASSERT_OK(db.RegisterTable(table));
  ZV_ASSERT_OK(db.RebuildChunkMap("sales", 256));
  ZV_ASSERT_OK_AND_ASSIGN(sql::SelectStatement a,
                          sql::ParseSelect("SELECT year, SUM(sales) FROM "
                                           "sales WHERE location = 'US' "
                                           "GROUP BY year"));
  ZV_ASSERT_OK_AND_ASSIGN(
      sql::SelectStatement b,
      sql::ParseSelect("SELECT year, SUM(profit) FROM sales GROUP BY year"));
  BatchScanQueue queue;
  BatchScanQueue::Selection sel = queue.SelectRows(&db, "sales", {&a, &b});
  ZV_ASSERT_OK(sel.status);
  ASSERT_EQ(sel.rows.size(), 2u);
  for (size_t i = 0; i < 2; ++i) {
    const sql::SelectStatement& stmt = i == 0 ? a : b;
    ZV_ASSERT_OK_AND_ASSIGN(std::unique_ptr<ChunkScanner> solo,
                            db.PrepareChunkScan(stmt));
    std::vector<uint32_t> rows;
    ZV_ASSERT_OK(
        solo->ScanRange(0, static_cast<uint32_t>(table->num_rows()), &rows));
    EXPECT_EQ(sel.rows[i], rows);
  }
  EXPECT_GT(sel.chunks_scanned, 0u);
  EXPECT_EQ(queue.passes(), 1u);

  Schema schema({{"year", ColumnType::kCategorical},
                 {"sales", ColumnType::kDouble}});
  TableBuilder empty_builder("sales", schema);
  ScanDatabase empty_db;
  ZV_ASSERT_OK(empty_db.RegisterTable(empty_builder.Finish()));
  ZV_ASSERT_OK_AND_ASSIGN(
      sql::SelectStatement c,
      sql::ParseSelect("SELECT year FROM sales"));
  BatchScanQueue::Selection empty = queue.SelectRows(&empty_db, "sales", {&c});
  ZV_ASSERT_OK(empty.status);
  ASSERT_EQ(empty.rows.size(), 1u);
  EXPECT_TRUE(empty.rows[0].empty());
  EXPECT_EQ(queue.passes(), 1u);  // no pass for an empty table
}

/// Group commit with a positive window: concurrent callers land in one
/// shared pass, and each still gets exactly its solo selection back.
TEST(BatchTest, ConcurrentCallersShareOnePass) {
  auto table = MediumSales();
  ScanDatabase db;
  ZV_ASSERT_OK(db.RegisterTable(table));
  ZV_ASSERT_OK(db.RebuildChunkMap("sales", 256));
  const char* const sqls[] = {
      "SELECT year FROM sales WHERE location = 'US'",
      "SELECT year FROM sales WHERE location = 'UK'",
      "SELECT year FROM sales WHERE sales > 100",
  };
  BatchScanOptions bopts;
  bopts.window_ms = 100;  // hold the pass open for all three arrivals
  BatchScanQueue queue(bopts);
  std::vector<sql::SelectStatement> stmts;
  for (const char* text : sqls) {
    ZV_ASSERT_OK_AND_ASSIGN(sql::SelectStatement stmt, sql::ParseSelect(text));
    stmts.push_back(std::move(stmt));
  }
  std::vector<BatchScanQueue::Selection> sels(stmts.size());
  std::vector<std::thread> callers;
  for (size_t i = 0; i < stmts.size(); ++i) {
    callers.emplace_back([&, i] {
      sels[i] = queue.SelectRows(&db, "sales", {&stmts[i]});
    });
  }
  for (auto& t : callers) t.join();
  for (size_t i = 0; i < stmts.size(); ++i) {
    ZV_ASSERT_OK(sels[i].status);
    EXPECT_TRUE(sels[i].shared) << "caller " << i;
    ZV_ASSERT_OK_AND_ASSIGN(std::unique_ptr<ChunkScanner> solo,
                            db.PrepareChunkScan(stmts[i]));
    std::vector<uint32_t> rows;
    ZV_ASSERT_OK(
        solo->ScanRange(0, static_cast<uint32_t>(table->num_rows()), &rows));
    EXPECT_EQ(sels[i].rows[0], rows) << "caller " << i;
  }
  EXPECT_EQ(queue.passes(), 1u);
  EXPECT_EQ(queue.shared_passes(), 1u);
  EXPECT_EQ(queue.statements_served(), 3u);
}

/// Mid-batch cancellation, queue level: a member cancelled while its pass
/// is held open abandons with kCancelled; the sibling completes with its
/// exact solo selection.
TEST(BatchTest, CancelledMemberLeavesSiblingUnaffected) {
  auto table = MediumSales();
  ScanDatabase db;
  ZV_ASSERT_OK(db.RegisterTable(table));
  ZV_ASSERT_OK(db.RebuildChunkMap("sales", 256));
  ZV_ASSERT_OK_AND_ASSIGN(
      sql::SelectStatement doomed,
      sql::ParseSelect("SELECT year FROM sales WHERE location = 'US'"));
  ZV_ASSERT_OK_AND_ASSIGN(
      sql::SelectStatement survivor,
      sql::ParseSelect("SELECT year FROM sales WHERE location = 'UK'"));
  BatchScanOptions bopts;
  bopts.window_ms = 2000;  // long window: the cancel always lands inside it
  BatchScanQueue queue(bopts);
  CancelToken token;
  BatchScanQueue::Selection cancelled_sel;
  std::thread doomed_caller([&] {
    CancelScope scope(token);
    cancelled_sel = queue.SelectRows(&db, "sales", {&doomed});
  });
  std::thread survivor_caller([&] {
    BatchScanQueue::Selection sel = queue.SelectRows(&db, "sales", {&survivor});
    ZV_ASSERT_OK(sel.status);
    ZV_ASSERT_OK_AND_ASSIGN(std::unique_ptr<ChunkScanner> solo,
                            db.PrepareChunkScan(survivor));
    std::vector<uint32_t> rows;
    ZV_ASSERT_OK(
        solo->ScanRange(0, static_cast<uint32_t>(table->num_rows()), &rows));
    EXPECT_EQ(sel.rows[0], rows);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  token.Cancel();
  doomed_caller.join();
  EXPECT_EQ(cancelled_sel.status.code(), StatusCode::kCancelled)
      << cancelled_sel.status.ToString();
  survivor_caller.join();
}

/// Service level: cancelling one query mid-batch never disturbs a
/// sibling session's query — the sibling's bytes still match the oracle.
TEST(BatchTest, ServiceCancelMidBatchSiblingsUnaffected) {
  auto table = MediumSales();
  auto db = std::make_shared<ScanDatabase>();
  ZV_ASSERT_OK(db->RegisterTable(table));
  ZV_ASSERT_OK(db->RebuildChunkMap("sales", 256));
  ZqlResult oracle;
  {
    ScanDatabase oracle_db;
    ZV_ASSERT_OK(oracle_db.RegisterTable(table));
    oracle = Oracle(&oracle_db, kQueries[0]);
  }
  server::ServiceOptions sopts;
  sopts.result_cache = false;
  sopts.batch_window_ms = 100;
  sopts.max_inflight = 4;
  server::QueryService service(sopts);
  ZV_ASSERT_OK(service.RegisterDataset(table, db));
  ZV_ASSERT_OK_AND_ASSIGN(server::SessionId s1, service.CreateSession());
  ZV_ASSERT_OK_AND_ASSIGN(server::SessionId s2, service.CreateSession());
  ZV_ASSERT_OK_AND_ASSIGN(server::QueryHandle doomed,
                          service.Submit(s1, "sales", kQueries[1]));
  ZV_ASSERT_OK_AND_ASSIGN(server::QueryHandle survivor,
                          service.Submit(s2, "sales", kQueries[0]));
  doomed.Cancel();
  const Status doomed_status = doomed.Wait();
  // The cancel races query completion: kCancelled normally, OK if the
  // query beat it to the finish line. Either way the sibling is whole.
  EXPECT_TRUE(doomed_status.ok() ||
              doomed_status.code() == StatusCode::kCancelled)
      << doomed_status.ToString();
  ZV_ASSERT_OK(survivor.Wait());
  auto res = survivor.result();
  ASSERT_NE(res, nullptr);
  EXPECT_TRUE(SameResult(oracle, *res));
}

/// ReplaceDataset mid-window: the pre-bump query finishes on the snapshot
/// it holds, the post-bump query sees the new data, and the two never
/// share a pass (a fresh backend is a fresh group key).
TEST(BatchTest, EpochBumpMidWindowIsolatesSnapshots) {
  SalesDataOptions old_opts;
  old_opts.num_rows = 2000;
  old_opts.num_products = 8;
  auto old_table = MakeSalesTable(old_opts);
  SalesDataOptions new_opts = old_opts;
  new_opts.num_rows = 2600;
  new_opts.seed = 23;
  auto new_table = MakeSalesTable(new_opts);

  ZqlResult oracle_old, oracle_new;
  {
    RoaringDatabase odb;
    ZV_ASSERT_OK(odb.RegisterTable(old_table));
    oracle_old = Oracle(&odb, kQueries[0]);
    RoaringDatabase ndb;
    ZV_ASSERT_OK(ndb.RegisterTable(new_table));
    oracle_new = Oracle(&ndb, kQueries[0]);
  }

  server::ServiceOptions sopts;
  sopts.result_cache = false;
  sopts.batch_window_ms = 100;
  sopts.max_inflight = 4;
  server::QueryService service(sopts);
  ZV_ASSERT_OK(service.RegisterDataset(old_table));
  ZV_ASSERT_OK_AND_ASSIGN(server::SessionId s1, service.CreateSession());
  ZV_ASSERT_OK_AND_ASSIGN(server::SessionId s2, service.CreateSession());

  ZV_ASSERT_OK_AND_ASSIGN(server::QueryHandle pre,
                          service.Submit(s1, "sales", kQueries[0]));
  ZV_ASSERT_OK(service.ReplaceDataset(new_table));
  ZV_ASSERT_OK_AND_ASSIGN(server::QueryHandle post,
                          service.Submit(s2, "sales", kQueries[0]));

  ZV_ASSERT_OK(pre.Wait());
  ZV_ASSERT_OK(post.Wait());
  auto pre_res = pre.result();
  auto post_res = post.result();
  ASSERT_NE(pre_res, nullptr);
  ASSERT_NE(post_res, nullptr);
  EXPECT_TRUE(SameResult(oracle_old, *pre_res)) << "pre-bump snapshot lost";
  EXPECT_TRUE(SameResult(oracle_new, *post_res)) << "post-bump data missed";
  // Different backends never group: every pass carried one query's work.
  EXPECT_EQ(service.stats().batch_passes_shared, 0u);
}

/// Binning pushdown vs the client-side binner, bit for bit. Integer data:
/// every y is an exactly-representable double, so sums are exact in any
/// association order and the on/off comparison is byte-tight (on float
/// data the two paths may differ in final ulps — that is why the identity
/// matrix above holds the knob constant instead).
TEST(BatchTest, BinningPushdownMatchesClientBinner) {
  Schema schema({{"xval", ColumnType::kInt},
                 {"yval", ColumnType::kInt},
                 {"grp", ColumnType::kCategorical}});
  TableBuilder b("sales", schema);
  std::mt19937 rng(99);
  const char* const groups[] = {"a", "b", "c"};
  for (int i = 0; i < 700; ++i) {
    ZV_ASSERT_OK(b.AddRow({Value::Int(static_cast<int64_t>(rng() % 200)),
                           Value::Int(static_cast<int64_t>(rng() % 100) - 50),
                           Value::Str(groups[rng() % 3])}));
  }
  auto table = b.Finish();
  const char* const binned_queries[] = {
      "*f1 | 'xval' | 'yval' | v1 <- 'grp'.* | | bar.(x=bin(20)) |",
      "*f1 | 'xval' | 'yval' | v1 <- 'grp'.* | | "
      "bar.(x=bin(20), y=agg('sum')) |",
      "*f1 | 'xval' | 'yval' | 'grp'.'a' | | bar.(x=bin(30), y=agg('avg')) |",
      "*f1 | 'xval' | 'yval' | 'grp'.'b' | | "
      "bar.(x=bin(15), y=agg('count')) |",
      "*f1 | 'xval' | 'yval' | v1 <- 'grp'.* | yval > 0 | "
      "bar.(x=bin(25), y=agg('min')) |",
      "*f1 | 'xval' | 'yval' | v1 <- 'grp'.* | | "
      "bar.(x=bin(40), y=agg('max')) |",
  };
  for (auto* make_db : {+[]() -> std::unique_ptr<Database> {
                          return std::make_unique<ScanDatabase>();
                        },
                        +[]() -> std::unique_ptr<Database> {
                          return std::make_unique<RoaringDatabase>();
                        }}) {
    auto db = make_db();
    ZV_ASSERT_OK(db->RegisterTable(table));
    for (const char* zql : binned_queries) {
      std::vector<std::string> pushed_sql;
      ZqlOptions on;
      on.binning_pushdown = true;
      on.sql_trace = &pushed_sql;
      ZqlOptions off;
      off.binning_pushdown = false;
      ZqlExecutor exec_on(db.get(), "sales", on);
      ZqlExecutor exec_off(db.get(), "sales", off);
      ZV_ASSERT_OK_AND_ASSIGN(ZqlResult pushed, exec_on.ExecuteText(zql));
      ZV_ASSERT_OK_AND_ASSIGN(ZqlResult client, exec_off.ExecuteText(zql));
      EXPECT_TRUE(SameResult(client, pushed)) << db->name() << ": " << zql;
      bool saw_bin = false;
      for (const std::string& sql : pushed_sql) {
        saw_bin |= sql.find("BIN(xval") != std::string::npos;
      }
      EXPECT_TRUE(saw_bin) << "pushdown did not engage: " << zql;
    }
  }
}

/// Box charts and categorical x axes must keep the client-side transform
/// (the five-number summary needs raw points; category labels cannot bin).
TEST(BatchTest, BinningPushdownSkipsIneligibleShapes) {
  auto table = testing::MakeTinySales();
  ScanDatabase db;
  ZV_ASSERT_OK(db.RegisterTable(table));
  const char* const raw_queries[] = {
      // Categorical x: 'year' is a dictionary column in the tiny table.
      "*f1 | 'year' | 'sales' | 'location'.'US' | | bar.(x=bin(2)) |",
      // Box chart over a numeric x.
      "*f1 | 'sales' | 'profit' | 'location'.'US' | | box.(x=bin(10)) |",
  };
  for (const char* zql : raw_queries) {
    std::vector<std::string> trace;
    ZqlOptions opts;
    opts.sql_trace = &trace;
    ZqlExecutor exec(&db, "sales", opts);
    ZV_ASSERT_OK_AND_ASSIGN(ZqlResult on, exec.ExecuteText(zql));
    for (const std::string& sql : trace) {
      EXPECT_EQ(sql.find("BIN("), std::string::npos) << zql << ": " << sql;
    }
    ZqlOptions off_opts;
    off_opts.binning_pushdown = false;
    ZqlExecutor exec_off(&db, "sales", off_opts);
    ZV_ASSERT_OK_AND_ASSIGN(ZqlResult off, exec_off.ExecuteText(zql));
    EXPECT_TRUE(SameResult(off, on)) << zql;
  }
}

/// Randomized multi-session soak: concurrent submits, random cancels, and
/// dataset swaps against precomputed per-snapshot oracles. Iteration count
/// scales with ZV_SOAK_ITERS (default 2 for plain ctest; the `stress`
/// configuration and the sanitizer scripts run it much longer).
TEST(BatchTest, RandomizedMultiSessionSoak) {
  const char* iters_env = std::getenv("ZV_SOAK_ITERS");
  const int iters = iters_env != nullptr ? std::atoi(iters_env) : 2;
  SalesDataOptions a_opts;
  a_opts.num_rows = 1500;
  a_opts.num_products = 8;
  auto table_a = MakeSalesTable(a_opts);
  SalesDataOptions b_opts = a_opts;
  b_opts.num_rows = 2100;
  b_opts.seed = 31;
  auto table_b = MakeSalesTable(b_opts);

  // Oracle per (snapshot, query).
  std::vector<std::vector<ZqlResult>> oracle(2);
  for (size_t v = 0; v < 2; ++v) {
    RoaringDatabase odb;
    ZV_ASSERT_OK(odb.RegisterTable(v == 0 ? table_a : table_b));
    for (const char* zql : kQueries) {
      oracle[v].push_back(Oracle(&odb, zql));
    }
  }

  std::mt19937 rng(20160901);
  for (int iter = 0; iter < iters; ++iter) {
    server::ServiceOptions sopts;
    sopts.result_cache = false;
    sopts.batch_window_ms = static_cast<double>(rng() % 3);  // 0..2 ms
    sopts.max_inflight = 4;
    server::QueryService service(sopts);
    ZV_ASSERT_OK(service.RegisterDataset(table_a));
    std::vector<server::SessionId> sids;
    for (int s = 0; s < 4; ++s) {
      ZV_ASSERT_OK_AND_ASSIGN(server::SessionId sid, service.CreateSession());
      sids.push_back(sid);
    }
    struct Pending {
      server::QueryHandle handle;
      size_t query;
      size_t version;
      bool cancelled;
    };
    std::vector<Pending> pending;
    size_t version = 0;
    const int submits = 16;
    for (int i = 0; i < submits; ++i) {
      if (rng() % 8 == 0) {  // occasional epoch bump mid-stream
        version ^= 1;
        ZV_ASSERT_OK(
            service.ReplaceDataset(version == 0 ? table_a : table_b));
      }
      const size_t q = rng() % kNumQueries;
      ZV_ASSERT_OK_AND_ASSIGN(
          server::QueryHandle h,
          service.Submit(sids[rng() % sids.size()], "sales", kQueries[q]));
      const bool cancel = rng() % 4 == 0;
      if (cancel) h.Cancel();
      pending.push_back({h, q, version, cancel});
    }
    for (Pending& p : pending) {
      const Status status = p.handle.Wait();
      if (p.cancelled) {
        EXPECT_TRUE(status.ok() || status.code() == StatusCode::kCancelled)
            << status.ToString();
        if (!status.ok()) continue;
      } else {
        ZV_ASSERT_OK(status);
      }
      auto res = p.handle.result();
      ASSERT_NE(res, nullptr);
      EXPECT_TRUE(SameResult(oracle[p.version][p.query], *res))
          << "iter " << iter << " query " << p.query << " version "
          << p.version;
    }
  }
}

}  // namespace
}  // namespace zv::zql
