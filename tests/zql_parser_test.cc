#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "zql/parser.h"

namespace zv::zql {
namespace {

// --- Name column -------------------------------------------------------------

TEST(ZqlNameTest, PlainOutputAndInput) {
  ZV_ASSERT_OK_AND_ASSIGN(NameEntry n, ParseNameEntry("*f1"));
  EXPECT_EQ(n.name, "f1");
  EXPECT_TRUE(n.output);
  EXPECT_FALSE(n.user_input);

  ZV_ASSERT_OK_AND_ASSIGN(NameEntry m, ParseNameEntry("-f2"));
  EXPECT_TRUE(m.user_input);
  EXPECT_EQ(m.name, "f2");

  ZV_ASSERT_OK_AND_ASSIGN(NameEntry p, ParseNameEntry("f3"));
  EXPECT_FALSE(p.output);
  EXPECT_FALSE(p.user_input);
}

TEST(ZqlNameTest, Derivations) {
  ZV_ASSERT_OK_AND_ASSIGN(NameEntry plus, ParseNameEntry("f3=f1+f2"));
  EXPECT_EQ(plus.derive, NameEntry::Derive::kPlus);
  EXPECT_EQ(plus.source_a, "f1");
  EXPECT_EQ(plus.source_b, "f2");

  ZV_ASSERT_OK_AND_ASSIGN(NameEntry minus, ParseNameEntry("*f3=f1-f2"));
  EXPECT_EQ(minus.derive, NameEntry::Derive::kMinus);
  EXPECT_TRUE(minus.output);

  ZV_ASSERT_OK_AND_ASSIGN(NameEntry inter, ParseNameEntry("f4=f1^f3"));
  EXPECT_EQ(inter.derive, NameEntry::Derive::kIntersect);

  ZV_ASSERT_OK_AND_ASSIGN(NameEntry idx, ParseNameEntry("f2=f1[3]"));
  EXPECT_EQ(idx.derive, NameEntry::Derive::kIndex);
  EXPECT_EQ(idx.index_a, 3);

  ZV_ASSERT_OK_AND_ASSIGN(NameEntry slice, ParseNameEntry("f2=f1[2:5]"));
  EXPECT_EQ(slice.derive, NameEntry::Derive::kSlice);
  EXPECT_EQ(slice.index_a, 2);
  EXPECT_EQ(slice.index_b, 5);

  ZV_ASSERT_OK_AND_ASSIGN(NameEntry range, ParseNameEntry("f2=f1.range"));
  EXPECT_EQ(range.derive, NameEntry::Derive::kRange);

  ZV_ASSERT_OK_AND_ASSIGN(NameEntry order, ParseNameEntry("*f2=f1.order"));
  EXPECT_EQ(order.derive, NameEntry::Derive::kOrder);
}

TEST(ZqlNameTest, Errors) {
  EXPECT_FALSE(ParseNameEntry("").ok());
  EXPECT_FALSE(ParseNameEntry("f1=f2?f3").ok());
  EXPECT_FALSE(ParseNameEntry("'quoted'").ok());
}

// --- X/Y column ----------------------------------------------------------------

TEST(ZqlAxisTest, Literal) {
  ZV_ASSERT_OK_AND_ASSIGN(AxisEntry e, ParseAxisEntry("'year'"));
  EXPECT_EQ(e.kind, AxisEntry::Kind::kLiteral);
  EXPECT_EQ(e.literal.attrs, std::vector<std::string>{"year"});
}

TEST(ZqlAxisTest, DeclareSet) {
  ZV_ASSERT_OK_AND_ASSIGN(AxisEntry e,
                          ParseAxisEntry("y1 <- {'profit', 'sales'}"));
  EXPECT_EQ(e.kind, AxisEntry::Kind::kDeclare);
  EXPECT_EQ(e.var, "y1");
  ASSERT_EQ(e.set.size(), 2u);
  EXPECT_EQ(e.set[0].Label(), "profit");
  EXPECT_EQ(e.set[1].Label(), "sales");
}

TEST(ZqlAxisTest, NamedSet) {
  ZV_ASSERT_OK_AND_ASSIGN(AxisEntry e, ParseAxisEntry("y1 <- M"));
  EXPECT_EQ(e.kind, AxisEntry::Kind::kDeclare);
  EXPECT_EQ(e.named_set, "M");
}

TEST(ZqlAxisTest, ReuseAndDerivedAndOrder) {
  ZV_ASSERT_OK_AND_ASSIGN(AxisEntry r, ParseAxisEntry("x2"));
  EXPECT_EQ(r.kind, AxisEntry::Kind::kReuse);

  ZV_ASSERT_OK_AND_ASSIGN(AxisEntry d, ParseAxisEntry("y1 <- _"));
  EXPECT_EQ(d.kind, AxisEntry::Kind::kDerived);

  ZV_ASSERT_OK_AND_ASSIGN(AxisEntry o, ParseAxisEntry("u1 ->"));
  EXPECT_EQ(o.kind, AxisEntry::Kind::kOrderBy);
  EXPECT_EQ(o.var, "u1");
}

TEST(ZqlAxisTest, PolarisCompose) {
  ZV_ASSERT_OK_AND_ASSIGN(AxisEntry plus, ParseAxisEntry("'profit' + 'sales'"));
  EXPECT_EQ(plus.kind, AxisEntry::Kind::kLiteral);
  EXPECT_EQ(plus.literal.compose, AxisValue::Compose::kPlus);
  EXPECT_EQ(plus.literal.Label(), "profit+sales");

  ZV_ASSERT_OK_AND_ASSIGN(
      AxisEntry cross,
      ParseAxisEntry("'product' * (x1 <- {'city', 'country'})"));
  EXPECT_EQ(cross.kind, AxisEntry::Kind::kDeclare);
  EXPECT_EQ(cross.var, "x1");
  ASSERT_EQ(cross.set.size(), 2u);
  EXPECT_EQ(cross.set[0].Label(), "product*city");
}

TEST(ZqlAxisTest, Blank) {
  ZV_ASSERT_OK_AND_ASSIGN(AxisEntry e, ParseAxisEntry("  "));
  EXPECT_EQ(e.kind, AxisEntry::Kind::kNone);
}

// --- Z column --------------------------------------------------------------------

TEST(ZqlZTest, Literal) {
  ZV_ASSERT_OK_AND_ASSIGN(ZEntry e, ParseZEntry("'product'.'chair'"));
  EXPECT_EQ(e.kind, ZEntry::Kind::kLiteral);
  EXPECT_EQ(e.literal.attr, "product");
  EXPECT_EQ(e.literal.value, Value::Str("chair"));
}

TEST(ZqlZTest, DeclareAll) {
  ZV_ASSERT_OK_AND_ASSIGN(ZEntry e, ParseZEntry("v1 <- 'product'.*"));
  EXPECT_EQ(e.kind, ZEntry::Kind::kDeclare);
  EXPECT_EQ(e.vars, std::vector<std::string>{"v1"});
  ASSERT_NE(e.set, nullptr);
  EXPECT_EQ(e.set->kind, ZSetExpr::Kind::kAttrDotValue);
  EXPECT_EQ(e.set->attr.kind, AttrSpec::Kind::kLiteral);
  EXPECT_EQ(e.set->value.kind, ValueSpec::Kind::kAll);
}

TEST(ZqlZTest, DeclareAllExcept) {
  ZV_ASSERT_OK_AND_ASSIGN(ZEntry e,
                          ParseZEntry("v1 <- 'product'.(* - 'stapler')"));
  EXPECT_EQ(e.set->value.kind, ValueSpec::Kind::kAllExcept);
  ASSERT_EQ(e.set->value.values.size(), 1u);
  EXPECT_EQ(e.set->value.values[0], Value::Str("stapler"));
}

TEST(ZqlZTest, DeclareValueList) {
  ZV_ASSERT_OK_AND_ASSIGN(ZEntry e,
                          ParseZEntry("v2 <- 'location'.{USA, Canada}"));
  EXPECT_EQ(e.set->value.kind, ValueSpec::Kind::kList);
  EXPECT_EQ(e.set->value.values[0], Value::Str("USA"));
}

TEST(ZqlZTest, AttributeIteration) {
  ZV_ASSERT_OK_AND_ASSIGN(
      ZEntry e, ParseZEntry("z1.v1 <- (* \\ {'year', 'sales'}).*"));
  EXPECT_EQ(e.vars, (std::vector<std::string>{"z1", "v1"}));
  EXPECT_EQ(e.set->attr.kind, AttrSpec::Kind::kAllExcept);
  ASSERT_EQ(e.set->attr.names.size(), 2u);
  EXPECT_EQ(e.set->value.kind, ValueSpec::Kind::kAll);
}

TEST(ZqlZTest, PairUnion) {
  ZV_ASSERT_OK_AND_ASSIGN(
      ZEntry e,
      ParseZEntry("z1.v1 <- ('product'.{'chair','desk'} | 'location'.'US')"));
  EXPECT_EQ(e.set->kind, ZSetExpr::Kind::kOp);
  EXPECT_EQ(e.set->op, '|');
}

TEST(ZqlZTest, RangeCombination) {
  ZV_ASSERT_OK_AND_ASSIGN(ZEntry e,
                          ParseZEntry("v4 <- (v2.range & v3.range)"));
  EXPECT_EQ(e.set->kind, ZSetExpr::Kind::kOp);
  EXPECT_EQ(e.set->op, '&');
  EXPECT_EQ(e.set->lhs->kind, ZSetExpr::Kind::kVarRange);
  EXPECT_EQ(e.set->lhs->var, "v2");
}

TEST(ZqlZTest, NamedSetAndReuseAndDerived) {
  ZV_ASSERT_OK_AND_ASSIGN(ZEntry named, ParseZEntry("v1 <- P"));
  EXPECT_EQ(named.set->kind, ZSetExpr::Kind::kNamedSet);
  EXPECT_EQ(named.set->var, "P");

  ZV_ASSERT_OK_AND_ASSIGN(ZEntry reuse, ParseZEntry("v1"));
  EXPECT_EQ(reuse.kind, ZEntry::Kind::kReuse);

  ZV_ASSERT_OK_AND_ASSIGN(ZEntry derived, ParseZEntry("v2 <- 'product'._"));
  EXPECT_EQ(derived.kind, ZEntry::Kind::kDerived);
  EXPECT_EQ(derived.derived_attr, "product");
}

TEST(ZqlZTest, NumericValues) {
  ZV_ASSERT_OK_AND_ASSIGN(ZEntry e, ParseZEntry("v2 <- 'year'.{2010, 2015}"));
  EXPECT_EQ(e.set->value.values[0], Value::Int(2010));
}

// --- Viz column -------------------------------------------------------------------

TEST(ZqlVizTest, Literal) {
  ZV_ASSERT_OK_AND_ASSIGN(VizEntry e, ParseVizEntry("bar.(y=agg('sum'))"));
  EXPECT_EQ(e.kind, VizEntry::Kind::kLiteral);
  EXPECT_EQ(e.literal.chart, ChartType::kBar);
  EXPECT_EQ(e.literal.y_agg, sql::AggFunc::kSum);
}

TEST(ZqlVizTest, BinSpec) {
  ZV_ASSERT_OK_AND_ASSIGN(
      VizEntry e, ParseVizEntry("bar.(x=bin(20), y=agg('sum'))"));
  EXPECT_DOUBLE_EQ(e.literal.x_bin, 20);
}

TEST(ZqlVizTest, SetOfSummarizations) {
  ZV_ASSERT_OK_AND_ASSIGN(
      VizEntry e,
      ParseVizEntry("s1 <- bar.{(x=bin(20), y=agg('sum')), (x=bin(30), "
                    "y=agg('sum'))}"));
  EXPECT_EQ(e.kind, VizEntry::Kind::kDeclare);
  ASSERT_EQ(e.set.size(), 2u);
  EXPECT_DOUBLE_EQ(e.set[0].x_bin, 20);
  EXPECT_DOUBLE_EQ(e.set[1].x_bin, 30);
}

TEST(ZqlVizTest, SetOfChartTypes) {
  ZV_ASSERT_OK_AND_ASSIGN(
      VizEntry e,
      ParseVizEntry("t1 <- {bar, dotplot}.(x=bin(20), y=agg('sum'))"));
  ASSERT_EQ(e.set.size(), 2u);
  EXPECT_EQ(e.set[0].chart, ChartType::kBar);
  EXPECT_EQ(e.set[1].chart, ChartType::kDotPlot);
  EXPECT_DOUBLE_EQ(e.set[1].x_bin, 20);
}

TEST(ZqlVizTest, BareType) {
  ZV_ASSERT_OK_AND_ASSIGN(VizEntry e, ParseVizEntry("scatterplot"));
  EXPECT_EQ(e.literal.chart, ChartType::kScatter);
}

// --- Process column ---------------------------------------------------------------

TEST(ZqlProcessTest, ArgMinTopK) {
  ZV_ASSERT_OK_AND_ASSIGN(auto ps,
                          ParseProcessCell("v2 <- argmin_v1[k=10] D(f1, f2)"));
  ASSERT_EQ(ps.size(), 1u);
  const ProcessDecl& p = ps[0];
  EXPECT_EQ(p.mech, Mechanism::kArgMin);
  EXPECT_EQ(p.outputs, std::vector<std::string>{"v2"});
  EXPECT_EQ(p.iter_vars, std::vector<std::string>{"v1"});
  ASSERT_TRUE(p.filter.k.has_value());
  EXPECT_EQ(*p.filter.k, 10);
  EXPECT_EQ(p.expr->func, "D");
  EXPECT_EQ(p.expr->args, (std::vector<std::string>{"f1", "f2"}));
}

TEST(ZqlProcessTest, ThresholdFilter) {
  ZV_ASSERT_OK_AND_ASSIGN(auto ps,
                          ParseProcessCell("v2 <- argany_v1[t > 0] T(f1)"));
  const ProcessDecl& p = ps[0];
  EXPECT_EQ(p.mech, Mechanism::kArgAny);
  ASSERT_TRUE(p.filter.t_above.has_value());
  EXPECT_DOUBLE_EQ(*p.filter.t_above, 0);
  EXPECT_EQ(p.expr->func, "T");
}

TEST(ZqlProcessTest, KInfinity) {
  ZV_ASSERT_OK_AND_ASSIGN(auto ps,
                          ParseProcessCell("u1 <- argmin_v1[k=inf] T(f1)"));
  EXPECT_FALSE(ps[0].filter.k.has_value());
}

TEST(ZqlProcessTest, MultipleVariables) {
  ZV_ASSERT_OK_AND_ASSIGN(
      auto ps, ParseProcessCell("x2, y2 <- argmax_x1,y1[k=10] D(f1, f2)"));
  const ProcessDecl& p = ps[0];
  EXPECT_EQ(p.outputs, (std::vector<std::string>{"x2", "y2"}));
  EXPECT_EQ(p.iter_vars, (std::vector<std::string>{"x1", "y1"}));
}

TEST(ZqlProcessTest, InnerReducer) {
  ZV_ASSERT_OK_AND_ASSIGN(
      auto ps,
      ParseProcessCell("v3 <- argmax_v1[k=10] min_v2 D(f1, f2)"));
  const ProcessDecl& p = ps[0];
  ASSERT_EQ(p.expr->kind, ProcessExpr::Kind::kReduce);
  EXPECT_EQ(p.expr->reduce, ProcessExpr::Reduce::kMin);
  EXPECT_EQ(p.expr->reduce_vars, std::vector<std::string>{"v2"});
  EXPECT_EQ(p.expr->child->func, "D");
}

TEST(ZqlProcessTest, SumReducerMultiVar) {
  ZV_ASSERT_OK_AND_ASSIGN(
      auto ps,
      ParseProcessCell("x3,y3 <- argmax_x1,y1[k=1] sum_x2,y2 D(f1, f2)"));
  const ProcessDecl& p = ps[0];
  EXPECT_EQ(p.expr->reduce, ProcessExpr::Reduce::kSum);
  EXPECT_EQ(p.expr->reduce_vars, (std::vector<std::string>{"x2", "y2"}));
}

TEST(ZqlProcessTest, RepresentativeCall) {
  ZV_ASSERT_OK_AND_ASSIGN(auto ps, ParseProcessCell("v2 <- R(10, v1, f1)"));
  const ProcessDecl& p = ps[0];
  EXPECT_EQ(p.kind, ProcessDecl::Kind::kRepresentative);
  EXPECT_EQ(p.repr_k, 10);
  EXPECT_EQ(p.repr_vars, std::vector<std::string>{"v1"});
  EXPECT_EQ(p.repr_component, "f1");
}

TEST(ZqlProcessTest, MultipleProcesses) {
  ZV_ASSERT_OK_AND_ASSIGN(
      auto ps,
      ParseProcessCell("(v2 <- argmax_v1[k=1] D(f1, f2)), (v3 <- "
                       "argmin_v1[k=1] D(f1, f2))"));
  ASSERT_EQ(ps.size(), 2u);
  EXPECT_EQ(ps[0].mech, Mechanism::kArgMax);
  EXPECT_EQ(ps[1].mech, Mechanism::kArgMin);
}

TEST(ZqlProcessTest, EmptyCell) {
  ZV_ASSERT_OK_AND_ASSIGN(auto ps, ParseProcessCell("  "));
  EXPECT_TRUE(ps.empty());
}

TEST(ZqlProcessTest, Errors) {
  EXPECT_FALSE(ParseProcessCell("v2 <- argmin_v1[k=0] T(f1)").ok());
  EXPECT_FALSE(ParseProcessCell("v2 <- frobnicate_v1 T(f1)").ok());
  EXPECT_FALSE(ParseProcessCell("v2, v3 <- argmin_v1[k=1] T(f1)").ok());
  EXPECT_FALSE(ParseProcessCell("v2 <- R(0, v1, f1)").ok());
}

// --- full queries -------------------------------------------------------------------

TEST(ZqlQueryTest, Table21) {
  // Paper Table 2.1.
  const char* text =
      "*f1 | 'year' | 'sales' | v1 <- 'product'.* | location='US' | "
      "bar.(y=agg('sum')) |";
  ZV_ASSERT_OK_AND_ASSIGN(ZqlQuery q, ParseQuery(text));
  ASSERT_EQ(q.rows.size(), 1u);
  const ZqlRow& row = q.rows[0];
  EXPECT_TRUE(row.name.output);
  EXPECT_EQ(row.x.literal.Label(), "year");
  EXPECT_EQ(row.constraints, "location='US'");
  EXPECT_EQ(row.viz.literal.chart, ChartType::kBar);
  EXPECT_EQ(q.OutputNames(), std::vector<std::string>{"f1"});
}

TEST(ZqlQueryTest, Table22UserInput) {
  const char* text =
      "-f1 | | | | |\n"
      "f2 | 'year' | 'sales' | v1 <- 'product'.* | | | v2 <- argmin_v1[k=1] "
      "D(f1, f2)\n"
      "*f3 | 'year' | 'sales' | v2 | | |";
  ZV_ASSERT_OK_AND_ASSIGN(ZqlQuery q, ParseQuery(text));
  ASSERT_EQ(q.rows.size(), 3u);
  EXPECT_TRUE(q.rows[0].name.user_input);
  ASSERT_EQ(q.rows[1].processes.size(), 1u);
  EXPECT_EQ(q.rows[2].zs[0].kind, ZEntry::Kind::kReuse);
}

TEST(ZqlQueryTest, HeaderReordersColumns) {
  const char* text =
      "name | x | y | z | z2 | process\n"
      "f1 | 'year' | 'sales' | v1 <- 'product'.* | v2 <- "
      "'location'.{USA, Canada} |";
  ZV_ASSERT_OK_AND_ASSIGN(ZqlQuery q, ParseQuery(text));
  ASSERT_EQ(q.rows[0].zs.size(), 2u);
  EXPECT_EQ(q.rows[0].zs[1].kind, ZEntry::Kind::kDeclare);
}

TEST(ZqlQueryTest, CommentsAndBlanksIgnored) {
  const char* text =
      "# a comment\n"
      "\n"
      "*f1 | 'year' | 'sales' | | | |\n";
  ZV_ASSERT_OK_AND_ASSIGN(ZqlQuery q, ParseQuery(text));
  EXPECT_EQ(q.rows.size(), 1u);
}

TEST(ZqlQueryTest, EmptyQueryFails) {
  EXPECT_FALSE(ParseQuery("# nothing\n").ok());
}

// --- Structured diagnostics --------------------------------------------------

TEST(ZqlDiagnosticsTest, ErrorsCarryLineColumnAndToken) {
  ParseDiagnostic diag;
  Result<ZqlQuery> r = ParseQuery(
      "# comment line\n"
      "*f1 | 'year' | 'sales' | | | |\n"
      "*f2 | 'year' | ??? | v1 <- 'product'.* | | |",
      &diag);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(diag.line, 3);
  // "???" starts at 1-based column 16 of the third line.
  EXPECT_EQ(diag.column, 16);
  EXPECT_EQ(diag.token, "???");
  EXPECT_NE(r.status().message().find("line 3, column 16 near '?\?\?'"),
            std::string::npos)
      << r.status().message();
}

TEST(ZqlDiagnosticsTest, IndentationCountsTowardColumns) {
  ParseDiagnostic diag;
  Result<ZqlQuery> r = ParseQuery("   *f1 | bad~name | 'sales' | | | |",
                                  &diag);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(diag.line, 1);
  EXPECT_EQ(diag.column, 10);  // 3 spaces of indent + "*f1 | " prefix
  EXPECT_EQ(diag.token, "bad~name");
}

TEST(ZqlDiagnosticsTest, ProcessCellErrorsPointIntoTheCell) {
  ParseDiagnostic diag;
  Result<ZqlQuery> r = ParseQuery(
      "*f1 | 'year' | 'sales' | v1 <- 'product'.* | | | v2 <- "
      "argmin_v1[k=0] T(f1)",
      &diag);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(diag.line, 1);
  EXPECT_GT(diag.column, 40) << "column should land inside the process cell";
  EXPECT_FALSE(diag.message.empty());
}

TEST(ZqlDiagnosticsTest, RowLevelErrorsStillCarryTheLine) {
  ParseDiagnostic diag;
  Result<ZqlQuery> r = ParseQuery("*f1 | 'x' | 'y' | | | |\n | 'x' |", &diag);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(diag.line, 2);
  ParseDiagnostic empty_diag;
  EXPECT_FALSE(ParseQuery("", &empty_diag).ok());
  EXPECT_EQ(empty_diag.line, 0);
}

}  // namespace
}  // namespace zv::zql
