/// \file extensions_test.cc
/// \brief Tests for the §10.1 future-work features implemented beyond the
/// paper's prototype: interpolated alignment for missing points, automatic
/// representative-count selection, and native run-container intersection.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "roaring/container.h"
#include "engine/scan_db.h"
#include "tasks/distance.h"
#include "tasks/primitives.h"
#include "viz/binning.h"
#include "zql/executor.h"
#include "tests/test_util.h"

namespace zv {
namespace {

Visualization SeriesAt(std::vector<int64_t> xs, std::vector<double> ys) {
  Visualization v;
  v.x_attr = "t";
  v.y_attr = "y";
  for (int64_t x : xs) v.xs.push_back(Value::Int(x));
  v.series = {{"y", std::move(ys)}};
  return v;
}

// --- interpolated alignment ---------------------------------------------------

TEST(InterpolationTest, FillsInteriorGapsLinearly) {
  // a covers 0..4; b misses x=1,2,3.
  Visualization a = SeriesAt({0, 1, 2, 3, 4}, {0, 1, 2, 3, 4});
  Visualization b = SeriesAt({0, 4}, {0, 4});
  auto m = AlignToMatrixInterpolated({&a, &b});
  EXPECT_EQ(m[0], (std::vector<double>{0, 1, 2, 3, 4}));
  // Linear fill: 0 -> 4 over 4 steps.
  EXPECT_EQ(m[1], (std::vector<double>{0, 1, 2, 3, 4}));
}

TEST(InterpolationTest, EdgeGapsExtendNearestValue) {
  Visualization a = SeriesAt({0, 1, 2, 3}, {9, 9, 9, 9});
  Visualization b = SeriesAt({1, 2}, {5, 7});
  auto m = AlignToMatrixInterpolated({&a, &b});
  EXPECT_EQ(m[1], (std::vector<double>{5, 5, 7, 7}));
}

TEST(InterpolationTest, ZeroFillVsInterpolationDistance) {
  // Same underlying line; b sampled sparsely. Zero-fill sees spurious
  // drops; interpolation recovers the line (the §10.1 motivation).
  Visualization a = SeriesAt({0, 1, 2, 3, 4, 5}, {0, 2, 4, 6, 8, 10});
  Visualization b = SeriesAt({0, 5}, {0, 10});
  const double zero_fill =
      Distance(a, b, DistanceMetric::kEuclidean, Normalization::kNone,
               Alignment::kZeroFill);
  const double interpolated =
      Distance(a, b, DistanceMetric::kEuclidean, Normalization::kNone,
               Alignment::kInterpolate);
  EXPECT_GT(zero_fill, 1.0);
  EXPECT_NEAR(interpolated, 0.0, 1e-9);
}

TEST(InterpolationTest, TaskLibraryThreadsAlignment) {
  TaskOptions opts;
  opts.alignment = Alignment::kInterpolate;
  opts.normalization = Normalization::kNone;
  TaskLibrary lib = TaskLibrary::Default(opts);
  Visualization a = SeriesAt({0, 1, 2, 3, 4, 5}, {0, 2, 4, 6, 8, 10});
  Visualization b = SeriesAt({0, 5}, {0, 10});
  EXPECT_NEAR(lib.distance(a, b), 0.0, 1e-9);
}

TEST(InterpolationTest, EmptySeriesStaysZero) {
  Visualization a = SeriesAt({0, 1}, {1, 2});
  Visualization b;  // no data at all
  b.x_attr = "t";
  b.y_attr = "y";
  b.series = {{"y", {}}};
  auto m = AlignToMatrixInterpolated({&a, &b});
  EXPECT_EQ(m[1], (std::vector<double>{0, 0}));
}

// --- automatic representative count --------------------------------------------

TEST(AutoKTest, FindsPlantedClusterCount) {
  // Three clearly distinct shapes, several members each.
  std::vector<Visualization> storage;
  Rng rng(5);
  auto add_cluster = [&](std::vector<double> base, size_t count) {
    for (size_t i = 0; i < count; ++i) {
      std::vector<double> ys = base;
      for (double& y : ys) y += 0.02 * rng.Normal();
      storage.push_back(SeriesAt({0, 1, 2, 3}, ys));
    }
  };
  add_cluster({0, 1, 2, 3}, 8);   // rising
  add_cluster({3, 2, 1, 0}, 8);   // falling
  add_cluster({0, 3, 0, 3}, 8);   // zigzag
  std::vector<const Visualization*> set;
  for (const auto& v : storage) set.push_back(&v);
  const size_t k = AutoRepresentativeCount(set, 8);
  EXPECT_GE(k, 2u);
  EXPECT_LE(k, 4u);
}

TEST(AutoKTest, DegenerateInputs) {
  EXPECT_EQ(AutoRepresentativeCount({}, 10), 1u);
  Visualization one = SeriesAt({0, 1}, {1, 2});
  EXPECT_EQ(AutoRepresentativeCount({&one}, 10), 1u);
  Visualization two = SeriesAt({0, 1}, {2, 1});
  EXPECT_EQ(AutoRepresentativeCount({&one, &two}, 10), 2u);
}

TEST(AutoKTest, BoundedByMaxK) {
  std::vector<Visualization> storage;
  for (int i = 0; i < 30; ++i) {
    storage.push_back(SeriesAt({0, 1, 2}, {double(i), double(i % 7), 1.0}));
  }
  std::vector<const Visualization*> set;
  for (const auto& v : storage) set.push_back(&v);
  EXPECT_LE(AutoRepresentativeCount(set, 5), 5u);
}

// --- native run-container intersection ------------------------------------------

namespace rr = zv::roaring;

TEST(RunContainerAndTest, RunRunOverlap) {
  rr::Container a = rr::Container::MakeRuns({{0, 99}, {1000, 499}});
  rr::Container b = rr::Container::MakeRuns({{50, 99}, {1200, 99}});
  rr::Container c = rr::Container::And(a, b);
  // Overlaps: [50,99] (50 values) and [1200,1299] (100 values).
  EXPECT_EQ(c.Cardinality(), 150u);
  EXPECT_TRUE(c.Contains(50));
  EXPECT_TRUE(c.Contains(99));
  EXPECT_FALSE(c.Contains(100));
  EXPECT_TRUE(c.Contains(1299));
  EXPECT_FALSE(c.Contains(1300));
}

TEST(RunContainerAndTest, RunRunDisjoint) {
  rr::Container a = rr::Container::MakeRuns({{0, 9}});
  rr::Container b = rr::Container::MakeRuns({{100, 9}});
  EXPECT_EQ(rr::Container::And(a, b).Cardinality(), 0u);
}

TEST(RunContainerAndTest, RunBitmapMasksCorrectly) {
  std::vector<uint64_t> words(rr::kBitmapWords, 0);
  for (uint32_t v = 0; v < 65536; v += 3) words[v >> 6] |= 1ULL << (v & 63);
  rr::Container bitmap = rr::Container::MakeBitmap(std::move(words));
  rr::Container runs = rr::Container::MakeRuns({{300, 299}});  // 300..599
  rr::Container c = rr::Container::And(runs, bitmap);
  // Multiples of 3 in [300, 599]: 300, 303, ..., 597 -> 100 values.
  EXPECT_EQ(c.Cardinality(), 100u);
  EXPECT_TRUE(c.Contains(300));
  EXPECT_TRUE(c.Contains(597));
  EXPECT_FALSE(c.Contains(299));
  EXPECT_FALSE(c.Contains(600));
}

TEST(RunContainerAndTest, RunArrayMembership) {
  rr::Container runs = rr::Container::MakeRuns({{10, 10}});  // 10..20
  rr::Container arr = rr::Container::MakeArray({5, 10, 15, 20, 25});
  rr::Container c = rr::Container::And(runs, arr);
  EXPECT_EQ(c.Cardinality(), 3u);
  EXPECT_TRUE(c.Contains(10));
  EXPECT_TRUE(c.Contains(15));
  EXPECT_TRUE(c.Contains(20));
}

TEST(RunContainerAndTest, MatchesReferenceAcrossRepresentations) {
  Rng rng(9);
  for (int trial = 0; trial < 10; ++trial) {
    // Build two random unions of ranges.
    auto make = [&rng](uint64_t) {
      rr::Container c;
      uint32_t at = rng.Uniform(500);
      for (int r = 0; r < 20; ++r) {
        const uint32_t len = 1 + rng.Uniform(400);
        for (uint32_t v = at; v <= at + len && v < 65536; ++v) {
          c.Add(static_cast<uint16_t>(v));
        }
        at += len + 1 + rng.Uniform(800);
        if (at >= 65000) break;
      }
      return c;
    };
    rr::Container a = make(1), b = make(2);
    const rr::Container reference = rr::Container::And(a, b);
    rr::Container ra = a, rb = b;
    ra.RunOptimize();
    rb.RunOptimize();
    EXPECT_TRUE(rr::Container::And(ra, rb).SameSetAs(reference));
    EXPECT_TRUE(rr::Container::And(ra, b).SameSetAs(reference));
    EXPECT_TRUE(rr::Container::And(a, rb).SameSetAs(reference));
  }
}

}  // namespace
}  // namespace zv

namespace zv {
namespace {

TEST(BoxPlotTest, FiveNumberSummary) {
  Visualization raw;
  raw.x_attr = "g";
  raw.y_attr = "y";
  raw.spec.chart = ChartType::kBox;
  // Group "a": 1..5; group "b": 10, 10, 10.
  for (double y : {1., 2., 3., 4., 5.}) {
    raw.xs.push_back(Value::Str("a"));
    raw.series.empty() ? raw.series.push_back({"y", {}}) : void();
    raw.series[0].ys.push_back(y);
  }
  for (int i = 0; i < 3; ++i) {
    raw.xs.push_back(Value::Str("b"));
    raw.series[0].ys.push_back(10);
  }
  const Visualization box = BoxPlotSummarize(raw);
  ASSERT_EQ(box.xs.size(), 2u);
  ASSERT_EQ(box.series.size(), 5u);
  // Group a: q1=2, median=3, q3=4, whiskers at 1 and 5 (inside 1.5 IQR).
  EXPECT_DOUBLE_EQ(box.series[1].ys[0], 2);
  EXPECT_DOUBLE_EQ(box.series[2].ys[0], 3);
  EXPECT_DOUBLE_EQ(box.series[3].ys[0], 4);
  EXPECT_DOUBLE_EQ(box.series[0].ys[0], 1);
  EXPECT_DOUBLE_EQ(box.series[4].ys[0], 5);
  // Group b: degenerate, everything 10.
  for (const auto& s : box.series) EXPECT_DOUBLE_EQ(s.ys[1], 10);
}

TEST(BoxPlotTest, WhiskersExcludeOutliers) {
  Visualization raw;
  raw.x_attr = "g";
  raw.y_attr = "y";
  raw.spec.chart = ChartType::kBox;
  raw.series.push_back({"y", {}});
  for (double y : {1., 2., 3., 4., 5., 100.}) {  // 100 is far outside
    raw.xs.push_back(Value::Str("a"));
    raw.series[0].ys.push_back(y);
  }
  const Visualization box = BoxPlotSummarize(raw);
  // Upper whisker clamps to the largest in-fence point, not 100.
  EXPECT_LT(box.series[4].ys[0], 100);
}

TEST(BoxPlotTest, EndToEndThroughZql) {
  auto table = testing::MakeTinySales();
  ScanDatabase db;
  ZV_ASSERT_OK(db.RegisterTable(table));
  zql::ZqlExecutor exec(&db, "sales");
  ZV_ASSERT_OK_AND_ASSIGN(
      zql::ZqlResult r,
      exec.ExecuteText(
          "*f1 | 'product' | 'sales' | | | box |"));
  ASSERT_EQ(r.outputs[0].visuals.size(), 1u);
  const Visualization& v = r.outputs[0].visuals[0];
  ASSERT_EQ(v.series.size(), 5u);
  EXPECT_EQ(v.xs.size(), 3u);  // chair, desk, stapler
  // Median chair sales across 6 rows (10,20,30,30,20,10) = 20.
  EXPECT_DOUBLE_EQ(v.series[2].ys[0], 20);
}

}  // namespace
}  // namespace zv
