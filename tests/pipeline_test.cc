/// \file pipeline_test.cc
/// \brief The pipelined-execution contract: results are byte-identical to
/// staged execution — and to the serial oracle — for every optimization
/// level and every ZV_THREADS setting, across fetch-only, task, reducer,
/// representative, derived, and user-input queries; cancellation lands
/// mid-pipeline promptly; per-stage timings are populated. Runs under the
/// tsan ctest label too (tools/run_tsan.sh): the fetch thread, the bounded
/// hand-off queue, and the scoring pool all race-check together.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "common/parallel.h"
#include "engine/roaring_db.h"
#include "engine/scan_db.h"
#include "tests/test_util.h"
#include "workload/datasets.h"
#include "zql/executor.h"

namespace zv::zql {
namespace {

class ScopedThreads {
 public:
  explicit ScopedThreads(size_t n) { SetParallelThreads(n); }
  ~ScopedThreads() { SetParallelThreads(0); }
};

bool SameVisualization(const Visualization& a, const Visualization& b) {
  return a.x_attr == b.x_attr && a.y_attr == b.y_attr &&
         a.slices == b.slices && a.constraints == b.constraints &&
         a.spec == b.spec && a.xs == b.xs && a.series == b.series;
}

/// Byte-level result equality: output names, order, visualization
/// identities, and every fetched double (exact comparison, no tolerance).
::testing::AssertionResult SameResult(const ZqlResult& a, const ZqlResult& b) {
  if (a.outputs.size() != b.outputs.size()) {
    return ::testing::AssertionFailure()
           << "output count " << a.outputs.size() << " vs "
           << b.outputs.size();
  }
  for (size_t o = 0; o < a.outputs.size(); ++o) {
    if (a.outputs[o].name != b.outputs[o].name) {
      return ::testing::AssertionFailure()
             << "output " << o << " name " << a.outputs[o].name << " vs "
             << b.outputs[o].name;
    }
    if (a.outputs[o].visuals.size() != b.outputs[o].visuals.size()) {
      return ::testing::AssertionFailure()
             << "output " << a.outputs[o].name << " size "
             << a.outputs[o].visuals.size() << " vs "
             << b.outputs[o].visuals.size();
    }
    for (size_t v = 0; v < a.outputs[o].visuals.size(); ++v) {
      if (!SameVisualization(a.outputs[o].visuals[v],
                             b.outputs[o].visuals[v])) {
        return ::testing::AssertionFailure()
               << "output " << a.outputs[o].name << " visual " << v << ": "
               << a.outputs[o].visuals[v].DebugString() << " vs "
               << b.outputs[o].visuals[v].DebugString();
      }
    }
  }
  return ::testing::AssertionSuccess();
}

Visualization MakeSketch() {
  Visualization v;
  v.x_attr = "year";
  v.y_attr = "sales";
  Series s;
  s.name = "sales";
  for (int i = 0; i < 10; ++i) {
    v.xs.push_back(Value::Int(2010 + i));
    s.ys.push_back(5.0 * i);  // steeply rising sketch
  }
  v.series.push_back(std::move(s));
  return v;
}

/// The query mix: plain fetches, a D task over a named set, a reducer, a
/// representative clustering, a user-input sketch, and derived rows — one
/// of each execution shape the operators support.
struct Case {
  const char* name;
  const char* zql;
  bool needs_sketch = false;
};

const Case kCases[] = {
    {"table_5_1",
     "f1 | 'year' | 'sales' | v1 <- P | location='US' | "
     "bar.(y=agg('sum')) | v2 <- argany_v1[t > 0] T(f1)\n"
     "f2 | 'year' | 'sales' | v1 | location='UK' | bar.(y=agg('sum')) | v3 "
     "<- argany_v1[t < 0] T(f2)\n"
     "*f3 | 'year' | 'profit' | v4 <- (v2.range | v3.range) | | "
     "bar.(y=agg('sum')) |"},
    {"table_5_2",
     "f1 | 'country' | 'sales' | v1 <- P | year=2010 | bar.(y=agg('sum')) "
     "|\n"
     "f2 | 'country' | 'sales' | v1 | year=2015 | bar.(y=agg('sum')) | v2 "
     "<- argmax_v1[k=4] D(f1, f2)\n"
     "*f3 | 'country' | 'profit' | v2 | year=2010 | bar.(y=agg('sum')) |\n"
     "*f4 | 'country' | 'profit' | v2 | year=2015 | bar.(y=agg('sum')) |"},
    {"reducer_and_representative",
     "f1 | 'year' | 'sales' | v1 <- P | location='US' | | v2 <- R(2, v1, "
     "f1)\n"
     "f2 | 'year' | 'sales' | v2 | location='US' | |\n"
     "f3 | 'year' | 'sales' | v1 | location='US' | | v3 <- argmax_v1[k=2] "
     "min_v2 D(f3, f2)\n"
     "*f4 | 'year' | 'sales' | v3 | location='US' | |"},
    {"sketch_and_derived",
     "-q | | | | | |\n"
     "f1 | 'year' | 'sales' | v1 <- P | location='US' | | o1 <- "
     "argmin_v1[k=3] D(f1, q)\n"
     "f2 | 'year' | 'sales' | o1 | location='US' | |\n"
     "*f3=f2.range | 'year' | 'sales' | | | |",
     /*needs_sketch=*/true},
};

NamedSets MakeP() {
  NamedSets sets;
  std::vector<Value> products;
  for (int i = 0; i < 8; ++i) {
    products.push_back(Value::Str("product" + std::to_string(i)));
  }
  sets.value_sets["P"] = {"product", products};
  return sets;
}

std::shared_ptr<Table> SharedSales() {
  static std::shared_ptr<Table> table = [] {
    SalesDataOptions opts;
    opts.num_rows = 6000;
    opts.num_products = 12;
    return MakeSalesTable(opts);
  }();
  return table;
}

Result<ZqlResult> RunCase(Database* db, const Case& c, bool pipelined,
                          OptLevel level, size_t shards = 1) {
  ZqlOptions opts;
  opts.optimization = level;
  opts.named_sets = MakeP();
  opts.pipelined_execution = pipelined;
  opts.shards = shards;
  ZqlExecutor exec(db, "sales", opts);
  if (c.needs_sketch) exec.SetUserInput("q", MakeSketch());
  return exec.ExecuteText(c.zql);
}

/// The oracle matrix: serial staged execution (ZV_THREADS=1, pipelining
/// off, one shard) is the reference; staged/pipelined at ZV_THREADS in
/// {1, 4} and shard fan-out in {1, 3} (over 512-row chunks) must reproduce
/// it byte for byte — same visuals, same SQL counts — at every
/// optimization level.
TEST(PipelineTest, PipelinedMatchesStagedMatchesSerial) {
  ScanDatabase db;
  ZV_ASSERT_OK(db.RegisterTable(SharedSales()));
  // 6000 rows in 512-row chunks: 12 chunks, so shards=3 genuinely fans out.
  ZV_ASSERT_OK(db.RebuildChunkMap("sales", 512));
  for (const Case& c : kCases) {
    for (OptLevel level : {OptLevel::kNoOpt, OptLevel::kIntraTask,
                           OptLevel::kInterTask}) {
      ZqlResult baseline;
      {
        ScopedThreads threads(1);
        ZV_ASSERT_OK_AND_ASSIGN(
            baseline, RunCase(&db, c, /*pipelined=*/false, level));
      }
      for (size_t nthreads : {size_t{1}, size_t{4}}) {
        for (bool pipelined : {false, true}) {
          for (size_t shards : {size_t{1}, size_t{3}}) {
            ScopedThreads threads(nthreads);
            ZV_ASSERT_OK_AND_ASSIGN(
                ZqlResult got, RunCase(&db, c, pipelined, level, shards));
            EXPECT_TRUE(SameResult(baseline, got))
                << c.name << " opt=" << OptLevelToString(level)
                << " threads=" << nthreads << " pipelined=" << pipelined
                << " shards=" << shards;
            EXPECT_EQ(baseline.stats.sql_queries, got.stats.sql_queries)
                << c.name;
            EXPECT_EQ(baseline.stats.sql_requests, got.stats.sql_requests)
                << c.name;
          }
        }
      }
    }
  }
}

/// Both backends drive the same streaming ScanBatch entry point.
TEST(PipelineTest, RoaringBackendIdenticalAcrossSchedules) {
  RoaringDatabase db;
  ZV_ASSERT_OK(db.RegisterTable(SharedSales()));
  const Case& c = kCases[1];  // table_5_2
  ScopedThreads threads(4);
  ZV_ASSERT_OK_AND_ASSIGN(
      ZqlResult staged, RunCase(&db, c, false, OptLevel::kInterTask));
  ZV_ASSERT_OK_AND_ASSIGN(
      ZqlResult pipelined, RunCase(&db, c, true, OptLevel::kInterTask));
  EXPECT_TRUE(SameResult(staged, pipelined));
}

/// Per-stage timings: fetch_ms (backend scans) and score_ms (combination
/// scoring) are populated and nested inside their umbrella timings.
TEST(PipelineTest, PerStageTimingsPopulated) {
  ScanDatabase db;
  ZV_ASSERT_OK(db.RegisterTable(SharedSales()));
  ScopedThreads threads(1);
  ZV_ASSERT_OK_AND_ASSIGN(
      ZqlResult r, RunCase(&db, kCases[1], true, OptLevel::kInterTask));
  EXPECT_GT(r.stats.fetch_ms, 0.0);
  EXPECT_GT(r.stats.score_ms, 0.0);
  EXPECT_LE(r.stats.fetch_ms, r.stats.exec_ms * 1.5 + 1.0);
  EXPECT_LE(r.stats.score_ms, r.stats.compute_ms * 1.5 + 1.0);
}

/// Cancellation mid-pipeline: the fetch thread observes the coordinator's
/// token between statements (and the backend's blocked scans poll it), so
/// a cancel during a long multi-request scan resolves promptly with
/// kCancelled — never a partial OK result.
TEST(PipelineTest, CancelMidPipelineReturnsPromptly) {
  SalesDataOptions data_opts;
  data_opts.num_rows = 20000;
  data_opts.num_products = 30;
  ScanDatabase db;
  ZV_ASSERT_OK(db.RegisterTable(MakeSalesTable(data_opts)));
  db.set_request_latency_micros(20000);  // 20 ms per round trip

  ZqlOptions opts;
  opts.optimization = OptLevel::kNoOpt;  // one request per visualization
  opts.pipelined_execution = true;
  ZqlExecutor exec(&db, "sales", opts);
  // 30 product scans at >= 20 ms each: ~600+ ms if left alone.
  const char* query = "*f1 | 'year' | 'sales' | v1 <- 'product'.* | | |";

  CancelToken token;
  Status status = Status::OK();
  const auto t0 = std::chrono::steady_clock::now();
  std::thread runner([&] {
    CancelScope scope(token);
    Result<ZqlResult> r = exec.ExecuteText(query);
    status = r.ok() ? Status::OK() : r.status();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  token.Cancel();
  runner.join();
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_EQ(status.code(), StatusCode::kCancelled) << status.ToString();
  EXPECT_LT(elapsed_ms, 400.0) << "cancellation latency far too high";
}

}  // namespace
}  // namespace zv::zql
