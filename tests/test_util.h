/// \file test_util.h
/// \brief Shared fixtures: a tiny hand-written sales table with known
/// aggregates, so tests can assert exact visualization values.

#ifndef ZV_TESTS_TEST_UTIL_H_
#define ZV_TESTS_TEST_UTIL_H_

#include <memory>

#include <gtest/gtest.h>

#include "storage/table.h"

namespace zv::testing {

/// Builds the "sales" table used across tests:
///
/// year  product  location  sales  profit
/// ----  -------  --------  -----  ------
/// 2014  chair    US        10     5
/// 2015  chair    US        20     6
/// 2016  chair    US        30     7      <- chair/US rises
/// 2014  chair    UK        30     3
/// 2015  chair    UK        20     2
/// 2016  chair    UK        10     1      <- chair/UK falls
/// 2014  desk     US        50     9
/// 2015  desk     US        40     8
/// 2016  desk     US        30     7      <- desk/US falls
/// 2014  desk     UK        10     2
/// 2015  desk     UK        25     4
/// 2016  desk     UK        40     6      <- desk/UK rises
/// 2014  stapler  US        11     5
/// 2015  stapler  US        21     7
/// 2016  stapler  US        32     9      <- stapler/US rises (like chair)
inline std::shared_ptr<Table> MakeTinySales() {
  Schema schema({
      {"year", ColumnType::kCategorical},
      {"product", ColumnType::kCategorical},
      {"location", ColumnType::kCategorical},
      {"sales", ColumnType::kDouble},
      {"profit", ColumnType::kDouble},
  });
  TableBuilder b("sales", schema);
  struct Row {
    int year;
    const char* product;
    const char* location;
    double sales;
    double profit;
  };
  const Row rows[] = {
      {2014, "chair", "US", 10, 5},   {2015, "chair", "US", 20, 6},
      {2016, "chair", "US", 30, 7},   {2014, "chair", "UK", 30, 3},
      {2015, "chair", "UK", 20, 2},   {2016, "chair", "UK", 10, 1},
      {2014, "desk", "US", 50, 9},    {2015, "desk", "US", 40, 8},
      {2016, "desk", "US", 30, 7},    {2014, "desk", "UK", 10, 2},
      {2015, "desk", "UK", 25, 4},    {2016, "desk", "UK", 40, 6},
      {2014, "stapler", "US", 11, 5}, {2015, "stapler", "US", 21, 7},
      {2016, "stapler", "US", 32, 9},
  };
  for (const Row& r : rows) {
    EXPECT_TRUE(b.AddRow({Value::Int(r.year), Value::Str(r.product),
                          Value::Str(r.location), Value::Double(r.sales),
                          Value::Double(r.profit)})
                    .ok());
  }
  return b.Finish();
}

#define ZV_ASSERT_OK(expr)                                       \
  do {                                                           \
    const auto& _st = (expr);                                    \
    ASSERT_TRUE(_st.ok()) << _st.ToString();                     \
  } while (0)

#define ZV_EXPECT_OK(expr)                                       \
  do {                                                           \
    const auto& _st = (expr);                                    \
    EXPECT_TRUE(_st.ok()) << _st.ToString();                     \
  } while (0)

#define ZV_ASSERT_OK_AND_ASSIGN(lhs, expr)                  \
  auto ZV_CONCAT_(_res, __LINE__) = (expr);                 \
  ASSERT_TRUE(ZV_CONCAT_(_res, __LINE__).ok())              \
      << ZV_CONCAT_(_res, __LINE__).status().ToString();    \
  lhs = std::move(ZV_CONCAT_(_res, __LINE__)).value();
#define ZV_CONCAT_IMPL_(a, b) a##b
#define ZV_CONCAT_(a, b) ZV_CONCAT_IMPL_(a, b)

}  // namespace zv::testing

#endif  // ZV_TESTS_TEST_UTIL_H_
