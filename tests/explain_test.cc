#include <gtest/gtest.h>

#include "tasks/simd.h"
#include "tests/test_util.h"
#include "zql/explain.h"
#include "zql/parser.h"

namespace zv::zql {
namespace {

// The Figure 5.1 query (Table 5.1): f1 and f2 are independent of each
// other's tasks and fetch in wave 0; f3 needs v2/v3 (task outputs) and
// lands in wave 1.
TEST(ExplainTest, Figure51Wavefront) {
  ZV_ASSERT_OK_AND_ASSIGN(
      ZqlQuery q,
      ParseQuery(
          "f1 | 'year' | 'sales' | v1 <- 'product'.* | location='US' | | v2 "
          "<- argany_v1[t > 0] T(f1)\n"
          "f2 | 'year' | 'sales' | v1 | location='UK' | | v3 <- "
          "argany_v1[t < 0] T(f2)\n"
          "*f3 | 'year' | 'profit' | v4 <- (v2.range | v3.range) | | |"));
  ZV_ASSERT_OK_AND_ASSIGN(QueryPlan plan, ExplainQuery(q));
  ASSERT_EQ(plan.rows.size(), 3u);
  EXPECT_EQ(plan.rows[0].wave, 0);
  EXPECT_EQ(plan.rows[1].wave, 0);  // f2 independent of t1
  EXPECT_EQ(plan.rows[2].wave, 1);  // f3 waits on v2 and v3
  EXPECT_EQ(plan.num_waves, 2);
  EXPECT_TRUE(plan.rows[0].has_task);
  EXPECT_EQ(plan.rows[0].task_outputs, std::vector<std::string>{"v2"});
  const std::string rendered = plan.ToString();
  EXPECT_NE(rendered.find("f3"), std::string::npos);
  EXPECT_NE(rendered.find("wave 1"), std::string::npos);
}

TEST(ExplainTest, ChainedTasksSerialize) {
  ZV_ASSERT_OK_AND_ASSIGN(
      ZqlQuery q,
      ParseQuery(
          "f1 | 'year' | 'sales' | v1 <- 'product'.* | | | v2 <- "
          "argmax_v1[k=3] T(f1)\n"
          "f2 | 'year' | 'profit' | v2 | | | v3 <- argmax_v2[k=1] T(f2)\n"
          "*f3 | 'year' | 'sales' | v3 | | |"));
  ZV_ASSERT_OK_AND_ASSIGN(QueryPlan plan, ExplainQuery(q));
  EXPECT_EQ(plan.rows[0].wave, 0);
  EXPECT_EQ(plan.rows[1].wave, 1);
  EXPECT_EQ(plan.rows[2].wave, 2);
  EXPECT_EQ(plan.num_waves, 3);
}

TEST(ExplainTest, DerivedRowsTrackComponentDeps) {
  ZV_ASSERT_OK_AND_ASSIGN(
      ZqlQuery q,
      ParseQuery("f1 | 'year' | 'sales' | v1 <- 'product'.* | | |\n"
                 "f2 | 'year' | 'profit' | v1 | | |\n"
                 "*f3=f1+f2 | | | | |"));
  ZV_ASSERT_OK_AND_ASSIGN(QueryPlan plan, ExplainQuery(q));
  EXPECT_TRUE(plan.rows[2].derived);
  EXPECT_EQ(plan.rows[2].consumes_components,
            (std::vector<std::string>{"f1", "f2"}));
  // All fetchable/derivable in one wave: f1, f2 fetch; f3 derives after.
  EXPECT_EQ(plan.rows[2].wave, 0);
}

TEST(ExplainTest, UndefinedVariableIsCircular) {
  ZV_ASSERT_OK_AND_ASSIGN(
      ZqlQuery q, ParseQuery("*f1 | 'year' | 'sales' | vX | | |"));
  EXPECT_FALSE(ExplainQuery(q).ok());
}

// Task scoring annotations: a bare argmin[k=n] D(f, g) is reported as
// ScoringContext-batched and top-k pruned; trend scans and user functions
// are labelled with their own paths.
TEST(ExplainTest, AnnotatesTaskScoringPaths) {
  ZV_ASSERT_OK_AND_ASSIGN(
      ZqlQuery q,
      ParseQuery(
          "f1 | 'year' | 'sales' | v1 <- 'product'.* | | |\n"
          "f2 | 'year' | 'sales' | 'product'.'chair' | | | v2 <- "
          "argmin_v1[k=2] D(f1, f2)\n"
          "f4 | 'year' | 'profit' | v1 | | | v3 <- argany_v1[t > 0] T(f4)\n"
          "*f3 | 'year' | 'profit' | v2 | | |"));
  ZV_ASSERT_OK_AND_ASSIGN(QueryPlan plan, ExplainQuery(q));
  ASSERT_EQ(plan.rows[1].task_scoring.size(), 1u);
  EXPECT_EQ(plan.rows[1].task_scoring[0],
            "D: ScoringContext batch scan, top-k pruned k=2, kernel=" +
                std::string(simd::LevelName(simd::ActiveLevel())) +
                ", context-cacheable");
  ASSERT_EQ(plan.rows[2].task_scoring.size(), 1u);
  EXPECT_EQ(plan.rows[2].task_scoring[0], "T: parallel trend scan");
  const std::string rendered = plan.ToString();
  EXPECT_NE(rendered.find("top-k pruned k=2"), std::string::npos);
}

TEST(ExplainTest, UserFunctionsAnnotatedSerial) {
  ZV_ASSERT_OK_AND_ASSIGN(
      ZqlQuery q,
      ParseQuery("*f1 | 'year' | 'sales' | v1 <- 'product'.* | | | v2 <- "
                 "argmax_v1[k=1] MyScore(f1)"));
  ZV_ASSERT_OK_AND_ASSIGN(QueryPlan plan, ExplainQuery(q));
  ASSERT_EQ(plan.rows[0].task_scoring.size(), 1u);
  EXPECT_EQ(plan.rows[0].task_scoring[0],
            "user fn: serial per-pair scoring, context cache bypassed");
}

TEST(ExplainTest, IndependentRowsShareWave) {
  ZV_ASSERT_OK_AND_ASSIGN(
      ZqlQuery q,
      ParseQuery("*f1 | 'year' | 'sales' | | | |\n"
                 "*f2 | 'year' | 'profit' | | | |\n"
                 "*f3 | 'month' | 'sales' | | | |"));
  ZV_ASSERT_OK_AND_ASSIGN(QueryPlan plan, ExplainQuery(q));
  EXPECT_EQ(plan.num_waves, 1);
}

}  // namespace
}  // namespace zv::zql
