/// \file zql_builder_test.cc
/// \brief ZqlBuilder and the canonical AST serialization:
///  - builder-built queries serialize identically to their parsed-text
///    equivalents (the fingerprint-unification foundation);
///  - CanonicalText is idempotent over the full grammar: parse ->
///    serialize -> parse -> serialize is byte-identical;
///  - executing the builder AST and the parsed AST yields the identical
///    ZqlResult.

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/roaring_db.h"
#include "tests/test_util.h"
#include "zql/builder.h"
#include "zql/canonical.h"
#include "zql/executor.h"
#include "zql/parser.h"

namespace zv::zql {
namespace {

/// Byte rendering of a result (identities + exact double bits).
std::string Canon(const ZqlResult& r) {
  std::string out;
  for (const auto& o : r.outputs) {
    out += o.name + "[";
    for (const auto& v : o.visuals) {
      out += v.Label() + "(";
      for (const auto& x : v.xs) out += x.ToString() + ",";
      for (const auto& s : v.series) {
        out += s.name + ":";
        for (double y : s.ys) {
          uint64_t bits;
          std::memcpy(&bits, &y, sizeof(bits));
          out += std::to_string(bits) + ",";
        }
      }
      out += ")";
    }
    out += "]";
  }
  return out;
}

/// The idempotence contract: parse(text) -> canonical -> parse -> canonical
/// must be byte-stable, and the canonical text must re-parse at all.
void ExpectCanonicalStable(const std::string& text) {
  SCOPED_TRACE(text);
  ZV_ASSERT_OK_AND_ASSIGN(ZqlQuery q1, ParseQuery(text));
  const std::string c1 = CanonicalText(q1);
  ZV_ASSERT_OK_AND_ASSIGN(ZqlQuery q2, ParseQuery(c1));
  const std::string c2 = CanonicalText(q2);
  EXPECT_EQ(c1, c2) << "canonical serialization is not idempotent";
}

// ---------------------------------------------------------------------------
// Canonical round trips over the grammar
// ---------------------------------------------------------------------------

TEST(CanonicalTextTest, IdempotentAcrossTheGrammar) {
  const char* queries[] = {
      // Table 2.1: the quickstart shape.
      "*f1 | 'year' | 'sales' | v1 <- 'product'.* | location='US' | "
      "bar.(y=agg('sum')) |",
      // User sketch + similarity search + output iteration (Table 2.2).
      "-f1 | | | | | |\n"
      "f2 | 'year' | 'sales' | v1 <- 'product'.* | | | v2 <- "
      "argmin_v1[k=3] D(f1, f2)\n"
      "*f3 | 'year' | 'sales' | v2 | | |",
      // Axis declarations, named sets, reuse.
      "*f1 | x1 <- {'year', 'month'} | y1 <- M | v1 <- 'product'.* | | |",
      // Composed axes.
      "*f1 | 'year' | 'profit'+'sales' | | | |",
      "*f1 | 'product'*'location' | 'sales' | | | |",
      // Z set algebra with ops and parens.
      "*f1 | 'year' | 'sales' | v1 <- 'product'.* \\ 'product'.'chair' | | |",
      "*f1 | 'year' | 'sales' | v1 <- ('product'.{'chair', 'desk'} | "
      "'product'.'stapler') & 'product'.* | | |",
      // All-except attr spec and derived bindings.
      "f1 | 'year' | y1 <- {'sales', 'profit'} | v1 <- 'product'.* | | | "
      "z2, y2 <- argmax_v1,y1[k=2] D(f1, f1)\n"
      "*f2 | 'year' | y2 | v2 <- z2.range | | |",
      // Multiple Z columns via a header.
      "name | x | y | z | z2 | viz | process\n"
      "*f1 | 'year' | 'sales' | v1 <- 'product'.* | 'location'.'US' | | ",
      // Filters: k, k=inf, thresholds.
      "*f1 | 'year' | 'sales' | v1 <- 'product'.* | | | v2 <- "
      "argany_v1[t > 0] T(f1)",
      "*f1 | 'year' | 'sales' | v1 <- 'product'.* | | | v2 <- "
      "argmin_v1[k=inf] T(f1)",
      "*f1 | 'year' | 'sales' | v1 <- 'product'.* | | | v2 <- "
      "argany_v1[t < -0.5] T(f1)",
      // Reducers (nested), multiple processes, R().
      "f1 | 'year' | 'sales' | v1 <- 'product'.* | | |\n"
      "*f2 | 'year' | 'sales' | v2 <- 'product'.* | | | v3 <- "
      "argmin_v2[k=1] min_v1 D(f1, f2)",
      "f1 | 'year' | 'profit' | 'product'.'desk' | | |\n"
      "*f2 | 'year' | 'profit' | v1 <- 'product'.* | | | (v2 <- "
      "argmin_v1[k=1] D(f2, f1)), (v3 <- argmax_v1[k=1] D(f2, f1))",
      "f1 | 'year' | 'sales' | v1 <- 'product'.* | | | v2 <- R(2, v1, f1)\n"
      "*f2 | 'year' | 'sales' | v2 | | |",
      // Name derivations.
      "f1 | 'year' | 'sales' | v1 <- 'product'.* | | |\n"
      "f2 | 'year' | 'profit' | v1 | | |\n"
      "*f3=f1+f2 | | | | | |",
      "f1 | 'year' | 'sales' | v1 <- 'product'.* | | |\n"
      "*f2=f1[1] | | | | | |",
      "f1 | 'year' | 'sales' | v1 <- 'product'.* | | |\n"
      "*f2=f1[1:2] | | | | | |",
      // Viz declarations (set of specs) and reuse.
      "*f1 | 'year' | 'sales' | 'product'.'chair' | | w1 <- "
      "{bar.(y=agg('sum')), line.(y=agg('avg'))} |\n"
      "*f2 | 'year' | 'profit' | 'product'.'desk' | | w1 |",
      // Constraints with odd spacing collapse deterministically.
      "*f1 | 'year' | 'sales' | | location = 'US'   AND  sales > 10 | |",
  };
  for (const char* q : queries) ExpectCanonicalStable(q);
}

TEST(CanonicalTextTest, WhitespaceVariantsShareOneSerialization) {
  ZV_ASSERT_OK_AND_ASSIGN(
      ZqlQuery a,
      ParseQuery("*f1 | 'year' | 'sales' | v1 <- 'product'.* | "
                 "location='US' | bar.(y=agg('sum')) |"));
  ZV_ASSERT_OK_AND_ASSIGN(
      ZqlQuery b,
      ParseQuery("  *f1 |\t'year'   | 'sales' |v1<-'product'.*| location "
                 "= 'US' |  bar.(y=agg('sum'))  |"));
  EXPECT_EQ(CanonicalText(a), CanonicalText(b));
}

TEST(CanonicalTextTest, DistinctQueriesStayDistinct) {
  const char* base =
      "*f1 | 'year' | 'sales' | v1 <- 'product'.* | | | v2 <- "
      "argmin_v1[k=3] D(f1, f1)";
  const char* variants[] = {
      "*f1 | 'year' | 'profit' | v1 <- 'product'.* | | | v2 <- "
      "argmin_v1[k=3] D(f1, f1)",
      "*f1 | 'year' | 'sales' | v1 <- 'location'.* | | | v2 <- "
      "argmin_v1[k=3] D(f1, f1)",
      "*f1 | 'year' | 'sales' | v1 <- 'product'.* | | | v2 <- "
      "argmin_v1[k=4] D(f1, f1)",
      "*f1 | 'year' | 'sales' | v1 <- 'product'.* | | | v2 <- "
      "argmax_v1[k=3] D(f1, f1)",
      "*f1 | 'year' | 'sales' | v1 <- 'product'.* | location='US' | | v2 <- "
      "argmin_v1[k=3] D(f1, f1)",
      "f1 | 'year' | 'sales' | v1 <- 'product'.* | | | v2 <- "
      "argmin_v1[k=3] D(f1, f1)",
  };
  ZV_ASSERT_OK_AND_ASSIGN(ZqlQuery base_q, ParseQuery(base));
  const std::string base_c = CanonicalText(base_q);
  for (const char* v : variants) {
    ZV_ASSERT_OK_AND_ASSIGN(ZqlQuery q, ParseQuery(v));
    EXPECT_NE(CanonicalText(q), base_c) << v;
  }
}

TEST(CanonicalTextTest, DoubleValuesKeepFullPrecision) {
  // Two Z thresholds differing beyond %.6g must not collide.
  ZqlQuery a = ZqlBuilder()
                   .Row("f1").Output().X("year").Y("sales")
                   .Z("price", Value::Double(0.12345678901234567))
                   .Build().ValueOrDie();
  ZqlQuery b = ZqlBuilder()
                   .Row("f1").Output().X("year").Y("sales")
                   .Z("price", Value::Double(0.12345678901234999))
                   .Build().ValueOrDie();
  EXPECT_NE(CanonicalText(a), CanonicalText(b));
  // And the dotless double form re-parses to the identical bits.
  ZV_ASSERT_OK_AND_ASSIGN(ZqlQuery back, ParseQuery(CanonicalText(a)));
  ASSERT_EQ(back.rows[0].zs.size(), 1u);
  EXPECT_EQ(back.rows[0].zs[0].literal.value,
            Value::Double(0.12345678901234567));
  EXPECT_EQ(CanonicalText(back), CanonicalText(a));
}

// ---------------------------------------------------------------------------
// Builder == parsed text
// ---------------------------------------------------------------------------

TEST(ZqlBuilderTest, QuickstartShapeMatchesText) {
  ZqlQuery built = ZqlBuilder()
                       .Row("f1").Output()
                       .X("year").Y("sales")
                       .ZDeclare("v1", ZSet::All("product"))
                       .Where("location='US'")
                       .Viz("bar.(y=agg('sum'))")
                       .Build().ValueOrDie();
  ZV_ASSERT_OK_AND_ASSIGN(
      ZqlQuery parsed,
      ParseQuery("*f1 | 'year' | 'sales' | v1 <- 'product'.* | "
                 "location='US' | bar.(y=agg('sum')) |"));
  EXPECT_EQ(CanonicalText(built), CanonicalText(parsed));
}

TEST(ZqlBuilderTest, SimilaritySearchShapeMatchesText) {
  ZqlQuery built =
      ZqlBuilder()
          .Row("f1").UserInput()
          .Row("f2")
              .X("year").Y("sold_price")
              .ZDeclare("v1", ZSet::All("state"))
              .Viz("bar.(y=agg('avg'))")
              .Process(ProcessBuilder({"v2"}).ArgMin({"v1"}).K(3).Call(
                  "D", {"f1", "f2"}))
          .Row("f3").Output()
              .X("year").Y("sold_price")
              .ZReuse("v2")
              .Viz("bar.(y=agg('avg'))")
          .Build().ValueOrDie();
  ZV_ASSERT_OK_AND_ASSIGN(
      ZqlQuery parsed,
      ParseQuery("-f1 | | | | | |\n"
                 "f2 | 'year' | 'sold_price' | v1 <- 'state'.* | | "
                 "bar.(y=agg('avg')) | v2 <- argmin_v1[k=3] D(f1, f2)\n"
                 "*f3 | 'year' | 'sold_price' | v2 | | bar.(y=agg('avg')) |"));
  EXPECT_EQ(CanonicalText(built), CanonicalText(parsed));
}

TEST(ZqlBuilderTest, SetAlgebraReducersAndRepresentatives) {
  ZqlQuery built =
      ZqlBuilder()
          .Row("f1")
              .X("year").Y("sales")
              .ZDeclare("v1", ZSet::All("product").Minus(
                                  ZSet::One("product", "chair")))
              .Process(ProcessBuilder({"v2"}).Representative(2, {"v1"}, "f1"))
          .Row("f2").Output()
              .X("year").Y("sales")
              .ZReuse("v2")
          .Build().ValueOrDie();
  ZV_ASSERT_OK_AND_ASSIGN(
      ZqlQuery parsed,
      ParseQuery(
          "f1 | 'year' | 'sales' | v1 <- 'product'.* \\ 'product'.'chair' "
          "| | | v2 <- R(2, v1, f1)\n"
          "*f2 | 'year' | 'sales' | v2 | | |"));
  EXPECT_EQ(CanonicalText(built), CanonicalText(parsed));

  ZqlQuery reduced =
      ZqlBuilder()
          .Row("f1")
              .X("year").Y("sales").ZDeclare("v1", ZSet::All("product"))
          .Row("f2").Output()
              .X("year").Y("sales").ZDeclare("v2", ZSet::All("product"))
              .Process(ProcessBuilder({"v3"}).ArgMin({"v2"}).K(1).MinOver(
                  {"v1"}).Call("D", {"f1", "f2"}))
          .Build().ValueOrDie();
  ZV_ASSERT_OK_AND_ASSIGN(
      ZqlQuery reduced_parsed,
      ParseQuery("f1 | 'year' | 'sales' | v1 <- 'product'.* | | |\n"
                 "*f2 | 'year' | 'sales' | v2 <- 'product'.* | | | v3 <- "
                 "argmin_v2[k=1] min_v1 D(f1, f2)"));
  EXPECT_EQ(CanonicalText(reduced), CanonicalText(reduced_parsed));
}

TEST(ZqlBuilderTest, BuilderAndTextExecuteIdentically) {
  auto table = zv::testing::MakeTinySales();
  RoaringDatabase db;
  ZV_ASSERT_OK(db.RegisterTable(table));

  ZqlQuery built =
      ZqlBuilder()
          .Row("f1")
              .X("year").Y("sales").Z("product", "chair")
          .Row("f2").Output()
              .X("year").Y("sales").ZDeclare("v1", ZSet::All("product"))
              .Process(ProcessBuilder({"v2"}).ArgMin({"v1"}).K(2).Call(
                  "D", {"f2", "f1"}))
          .Build().ValueOrDie();
  const char* text =
      "f1 | 'year' | 'sales' | 'product'.'chair' | | |\n"
      "*f2 | 'year' | 'sales' | v1 <- 'product'.* | | | v2 <- "
      "argmin_v1[k=2] D(f2, f1)";

  ZqlExecutor exec_a(&db, "sales");
  ZV_ASSERT_OK_AND_ASSIGN(ZqlResult from_builder, exec_a.Execute(built));
  ZqlExecutor exec_b(&db, "sales");
  ZV_ASSERT_OK_AND_ASSIGN(ZqlResult from_text, exec_b.ExecuteText(text));
  EXPECT_EQ(Canon(from_builder), Canon(from_text));

  // And the canonical text of the builder AST executes identically too —
  // the full AST round trip preserves results, not just serialization.
  ZqlExecutor exec_c(&db, "sales");
  ZV_ASSERT_OK_AND_ASSIGN(ZqlResult from_canonical,
                          exec_c.ExecuteText(CanonicalText(built)));
  EXPECT_EQ(Canon(from_builder), Canon(from_canonical));
}

TEST(ZqlBuilderTest, ErrorsSurfaceAtBuild) {
  // Arity mismatch: 1 output, 2 iteration variables.
  {
    ZqlBuilder b;
    b.Row("f1").X("year").Y("sales")
        .ZDeclare("v1", ZSet::All("product"))
        .Process(ProcessBuilder({"v2"}).ArgMin({"v1", "y1"}).Call("T",
                                                                  {"f1"}));
    Result<ZqlQuery> r = b.Build();
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
  // Bad viz spec text.
  {
    ZqlBuilder b;
    b.Row("f1").X("year").Y("sales").Viz("sparkline.(nope)");
    EXPECT_FALSE(b.Build().ok());
  }
  // Missing objective call.
  {
    ZqlBuilder b;
    b.Row("f1").X("year").Y("sales")
        .ZDeclare("v1", ZSet::All("product"))
        .Process(ProcessBuilder({"v2"}).ArgMin({"v1"}));
    EXPECT_FALSE(b.Build().ok());
  }
  // Empty builder.
  EXPECT_FALSE(ZqlBuilder().Build().ok());
  // Embedded single quote: not representable in ZQL text, so the canonical
  // serialization (the cache key and wire form) could not round-trip —
  // rejected at Build rather than silently colliding fingerprints.
  {
    ZqlBuilder b;
    b.Row("f1").X("year").Y("sales")
        .ZDeclare("v1", ZSet::One("state", "O'Brien"));
    Result<ZqlQuery> r = b.Build();
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().message().find("single quote"), std::string::npos);
  }
  {
    ZqlBuilder b;
    b.Row("f1").X("ye'ar").Y("sales");
    EXPECT_FALSE(b.Build().ok());
  }
}

TEST(ZqlBuilderTest, BuilderIsReusableAndSnapshotting) {
  ZqlBuilder b;
  b.Row("f1").Output().X("year").Y("sales");
  ZqlQuery one = b.Build().ValueOrDie();
  EXPECT_EQ(one.rows.size(), 1u);
  b.Row("f2").Output().X("year").Y("profit");
  ZqlQuery two = b.Build().ValueOrDie();
  EXPECT_EQ(two.rows.size(), 2u);
  EXPECT_EQ(one.rows.size(), 1u) << "earlier snapshot must not grow";
}

}  // namespace
}  // namespace zv::zql
