/// \file metrics_test.cc
/// \brief The metrics contract: histogram snapshots are a pure function of
/// the recorded multiset (any recording order or thread interleaving yields
/// byte-identical buckets, count, and integer-ns sum); bucket bounds follow
/// the fixed geometric ladder; percentiles are exact ladder values with
/// sane edge behavior (empty, q=0, q=1, beyond-ceiling clamp); registry
/// metric pointers are stable and snapshots are name-ordered; and the JSON
/// / text expositions carry every registered metric. Runs under the
/// tsan/asan ctest gates: recording is relaxed atomics hammered from many
/// threads here.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <thread>
#include <vector>

#include "common/json.h"
#include "common/metrics.h"
#include "tests/test_util.h"

namespace zv {
namespace {

bool SameSnapshot(const Histogram::Snapshot& a, const Histogram::Snapshot& b) {
  return a.count == b.count && a.sum_ms == b.sum_ms && a.buckets == b.buckets;
}

TEST(Histogram, BucketLadder) {
  EXPECT_DOUBLE_EQ(Histogram::BucketUpperMs(0), Histogram::kMinBucketMs);
  // One octave (kBucketsPerOctave buckets) doubles the bound.
  EXPECT_DOUBLE_EQ(
      Histogram::BucketUpperMs(Histogram::kBucketsPerOctave),
      2 * Histogram::kMinBucketMs);
  EXPECT_DOUBLE_EQ(
      Histogram::BucketUpperMs(2 * Histogram::kBucketsPerOctave),
      4 * Histogram::kMinBucketMs);
  // Bounds are strictly increasing across the whole ladder.
  for (size_t i = 1; i < Histogram::kNumBuckets; ++i) {
    EXPECT_LT(Histogram::BucketUpperMs(i - 1), Histogram::BucketUpperMs(i));
  }
  // At-or-below the floor lands in bucket 0; beyond the ceiling clamps.
  EXPECT_EQ(Histogram::BucketOf(0.0), 0u);
  EXPECT_EQ(Histogram::BucketOf(-1.0), 0u);
  EXPECT_EQ(Histogram::BucketOf(Histogram::kMinBucketMs), 0u);
  EXPECT_EQ(Histogram::BucketOf(1e12), Histogram::kNumBuckets - 1);
  // A sample sits in the bucket whose bound range covers it.
  const double ms = 3.7;
  const size_t b = Histogram::BucketOf(ms);
  EXPECT_LE(ms, Histogram::BucketUpperMs(b));
  ASSERT_GT(b, 0u);
  EXPECT_GT(ms, Histogram::BucketUpperMs(b - 1));
}

TEST(Histogram, SnapshotIsOrderIndependent) {
  std::vector<double> samples;
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> dist(0.001, 500.0);
  for (int i = 0; i < 2000; ++i) samples.push_back(dist(rng));

  Histogram forward;
  for (double s : samples) forward.Record(s);

  std::shuffle(samples.begin(), samples.end(), rng);
  Histogram shuffled;
  for (double s : samples) shuffled.Record(s);

  const Histogram::Snapshot a = forward.snapshot();
  const Histogram::Snapshot b = shuffled.snapshot();
  EXPECT_TRUE(SameSnapshot(a, b));
  EXPECT_EQ(a.count, 2000u);
  // Identical including the sum: it accumulates in integer nanoseconds,
  // so addition order cannot perturb it.
  EXPECT_EQ(a.sum_ms, b.sum_ms);
  for (double q : {0.0, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_EQ(a.Percentile(q), b.Percentile(q)) << q;
  }
}

TEST(Histogram, ConcurrentRecordingMatchesSerial) {
  constexpr size_t kThreads = 8;
  constexpr size_t kPerThread = 5000;
  Histogram concurrent;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&concurrent, t] {
      std::mt19937 rng(static_cast<uint32_t>(t));
      std::uniform_real_distribution<double> dist(0.01, 50.0);
      for (size_t i = 0; i < kPerThread; ++i) concurrent.Record(dist(rng));
    });
  }
  for (std::thread& t : threads) t.join();

  Histogram serial;
  for (size_t t = 0; t < kThreads; ++t) {
    std::mt19937 rng(static_cast<uint32_t>(t));
    std::uniform_real_distribution<double> dist(0.01, 50.0);
    for (size_t i = 0; i < kPerThread; ++i) serial.Record(dist(rng));
  }

  const Histogram::Snapshot a = concurrent.snapshot();
  EXPECT_EQ(a.count, kThreads * kPerThread);
  EXPECT_TRUE(SameSnapshot(a, serial.snapshot()));
}

TEST(Histogram, PercentileEdges) {
  Histogram h;
  const Histogram::Snapshot empty = h.snapshot();
  EXPECT_EQ(empty.count, 0u);
  EXPECT_EQ(empty.Percentile(0.5), 0.0);
  EXPECT_EQ(empty.mean_ms(), 0.0);

  h.Record(10.0);
  const Histogram::Snapshot one = h.snapshot();
  EXPECT_EQ(one.count, 1u);
  // Every quantile of a single sample is that sample's bucket bound:
  // an exact ladder value within one bucket (~9%) of the sample.
  const double expect = Histogram::BucketUpperMs(Histogram::BucketOf(10.0));
  for (double q : {0.0, 0.5, 1.0}) {
    EXPECT_EQ(one.Percentile(q), expect) << q;
  }
  EXPECT_GE(expect, 10.0);
  EXPECT_LE(expect, 10.0 * 1.10);
  // The mean is the true sum (ns-rounded), not a bucket bound.
  EXPECT_NEAR(one.mean_ms(), 10.0, 1e-6);

  h.Reset();
  EXPECT_EQ(h.snapshot().count, 0u);
}

TEST(Histogram, PercentileRanksSplitTheLadder) {
  Histogram h;
  // 90 fast + 10 slow: p50 must come from the fast bucket, p99 and p999
  // from the slow one.
  for (int i = 0; i < 90; ++i) h.Record(1.0);
  for (int i = 0; i < 10; ++i) h.Record(100.0);
  const Histogram::Snapshot snap = h.snapshot();
  const double fast = Histogram::BucketUpperMs(Histogram::BucketOf(1.0));
  const double slow = Histogram::BucketUpperMs(Histogram::BucketOf(100.0));
  EXPECT_EQ(snap.Percentile(0.5), fast);
  EXPECT_EQ(snap.Percentile(0.9), fast);
  EXPECT_EQ(snap.Percentile(0.99), slow);
  EXPECT_EQ(snap.Percentile(0.999), slow);
}

TEST(Registry, PointerStableAndCreateOnFirstUse) {
  MetricsRegistry registry;
  Counter* c1 = registry.GetCounter("zv_test_counter");
  Counter* c2 = registry.GetCounter("zv_test_counter");
  EXPECT_EQ(c1, c2);
  Gauge* g1 = registry.GetGauge("zv_test_gauge");
  EXPECT_EQ(g1, registry.GetGauge("zv_test_gauge"));
  Histogram* h1 = registry.GetHistogram("zv_test_hist");
  EXPECT_EQ(h1, registry.GetHistogram("zv_test_hist"));

  c1->Increment(3);
  g1->Set(-7);
  h1->Record(2.5);

  const MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].first, "zv_test_counter");
  EXPECT_EQ(snap.counters[0].second, 3u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].second, -7);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 1u);
  EXPECT_GT(snap.histograms[0].p50, 0.0);

  registry.Reset();
  EXPECT_EQ(c1->value(), 0u);
  EXPECT_EQ(g1->value(), 0);
  EXPECT_EQ(h1->snapshot().count, 0u);
}

TEST(Registry, SnapshotIsNameOrdered) {
  MetricsRegistry registry;
  registry.GetCounter("zv_b");
  registry.GetCounter("zv_a");
  registry.GetCounter("zv_c");
  registry.GetHistogram("zv_z_hist");
  registry.GetHistogram("zv_a_hist");
  const MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].first, "zv_a");
  EXPECT_EQ(snap.counters[1].first, "zv_b");
  EXPECT_EQ(snap.counters[2].first, "zv_c");
  ASSERT_EQ(snap.histograms.size(), 2u);
  EXPECT_EQ(snap.histograms[0].name, "zv_a_hist");
  EXPECT_EQ(snap.histograms[1].name, "zv_z_hist");
}

TEST(Registry, GlobalIsAProcessSingleton) {
  MetricsRegistry* g = MetricsRegistry::Global();
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g, MetricsRegistry::Global());
  // A private registry is disjoint from the global one.
  MetricsRegistry local;
  EXPECT_NE(g->GetCounter("zv_metrics_test_global"),
            local.GetCounter("zv_metrics_test_global"));
}

TEST(Exposition, JsonCarriesEveryMetricDeterministically) {
  MetricsRegistry registry;
  registry.GetCounter("zv_requests")->Increment(5);
  registry.GetGauge("zv_depth")->Set(2);
  Histogram* h = registry.GetHistogram("zv_latency_ms");
  h->Record(1.0);
  h->Record(2.0);

  const Json json = registry.Snapshot().ToJson();
  const Json* counters = json.Find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->Find("zv_requests"), nullptr);
  EXPECT_EQ(counters->Find("zv_requests")->as_int(), 5);
  const Json* gauges = json.Find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_EQ(gauges->Find("zv_depth")->as_int(), 2);
  const Json* hists = json.Find("histograms");
  ASSERT_NE(hists, nullptr);
  const Json* lat = hists->Find("zv_latency_ms");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->Find("count")->as_int(), 2);
  for (const char* key : {"sum_ms", "mean_ms", "p50", "p90", "p99", "p999"}) {
    ASSERT_NE(lat->Find(key), nullptr) << key;
  }
  // Deterministic: encoding twice yields the same bytes.
  EXPECT_EQ(registry.Snapshot().ToJson().Dump(), json.Dump());
}

TEST(Exposition, TextCarriesCountSumAndQuantiles) {
  MetricsRegistry registry;
  registry.GetCounter("zv_requests")->Increment(5);
  registry.GetHistogram("zv_latency_ms")->Record(3.0);
  const std::string text = registry.Snapshot().ToText();
  EXPECT_NE(text.find("zv_requests"), std::string::npos);
  EXPECT_NE(text.find("zv_latency_ms"), std::string::npos);
  EXPECT_NE(text.find("count"), std::string::npos);
  EXPECT_NE(text.find("sum"), std::string::npos);
  EXPECT_NE(text.find("0.5"), std::string::npos);  // the p50 quantile line
}

}  // namespace
}  // namespace zv
