/// \file api_test.cc
/// \brief The typed protocol's contracts: lossless request/response wire
/// round trips, the total StatusCode -> structured-error mapping, version
/// negotiation, per-output pagination, Vega payloads, and the end-to-end
/// wire path (JSON in, JSON out) against a live QueryService — including
/// parse diagnostics flowing into the error payload.

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/protocol.h"
#include "api/service.h"
#include "server/query_service.h"
#include "tests/test_util.h"
#include "zql/builder.h"
#include "zql/canonical.h"

namespace zv::api {
namespace {

using server::QueryService;
using server::SessionId;

zql::ZqlQuery QuickstartQuery() {
  return zql::ZqlBuilder()
      .Row("f1").Output()
      .X("year").Y("sales")
      .ZDeclare("v1", zql::ZSet::All("product"))
      .Where("location='US'")
      .Viz("bar.(y=agg('sum'))")
      .Build().ValueOrDie();
}

// ---------------------------------------------------------------------------
// Codec round trips
// ---------------------------------------------------------------------------

TEST(ApiProtocolTest, RequestWireRoundTripIsLossless) {
  QueryRequest request;
  request.dataset = "sales";
  request.query = QuickstartQuery();
  request.optimization = zql::OptLevel::kIntraTask;
  request.page = {2, 5};
  request.include_vega = true;
  request.include_data = false;
  request.explain = true;
  request.client_tag = "panel-3";

  const std::string wire = EncodeRequest(request).Dump();
  ZV_ASSERT_OK_AND_ASSIGN(Json parsed, Json::Parse(wire));
  ZV_ASSERT_OK_AND_ASSIGN(QueryRequest decoded, DecodeRequest(parsed));

  EXPECT_EQ(decoded.version, request.version);
  EXPECT_EQ(decoded.dataset, request.dataset);
  EXPECT_EQ(zql::CanonicalText(decoded.query),
            zql::CanonicalText(request.query));
  EXPECT_EQ(decoded.optimization, request.optimization);
  EXPECT_EQ(decoded.page, request.page);
  EXPECT_EQ(decoded.include_vega, true);
  EXPECT_EQ(decoded.include_data, false);
  EXPECT_EQ(decoded.explain, true);
  EXPECT_EQ(decoded.client_tag, "panel-3");
  // Byte-stable re-encode: encode(decode(wire)) == wire.
  EXPECT_EQ(EncodeRequest(decoded).Dump(), wire);
}

TEST(ApiProtocolTest, ResponseWireRoundTripIsLossless) {
  QueryResponse response;
  response.version = kProtocolVersion;
  OutputSlice slice;
  slice.name = "f1";
  slice.total = 7;
  slice.offset = 2;
  Visualization viz;
  viz.x_attr = "year";
  viz.y_attr = "sales";
  viz.slices = {{"product", Value::Str("chair")}};
  viz.constraints = "location='US'";
  viz.xs = {Value::Int(2014), Value::Int(2015), Value::Double(2016.5),
            Value::Str("n/a"), Value::Null()};
  viz.series = {{"sales", {1.5, -0.25, 1.0 / 3.0, 0.0, 9e99}}};
  slice.labels = {viz.Label()};
  slice.visuals = {viz};
  slice.vega = {"{\"mark\": \"bar\"}"};
  response.outputs = {slice};
  response.stats.sql_queries = 3;
  response.stats.cache_hits = 1;
  response.stats.total_ms = 0.125;
  response.stats.fetch_ms = 0.0625;
  response.stats.score_ms = 0.03125;
  response.fingerprint = "abc123";
  response.plan = "physical plan: opt=Inter-Task, staged, 1 stage\n";
  response.client_tag = "panel-3";

  const std::string wire = EncodeResponse(response).Dump();
  ZV_ASSERT_OK_AND_ASSIGN(Json parsed, Json::Parse(wire));
  ZV_ASSERT_OK_AND_ASSIGN(QueryResponse decoded, DecodeResponse(parsed));

  EXPECT_TRUE(decoded.ok());
  ASSERT_EQ(decoded.outputs.size(), 1u);
  const OutputSlice& out = decoded.outputs[0];
  EXPECT_EQ(out.name, "f1");
  EXPECT_EQ(out.total, 7u);
  EXPECT_EQ(out.offset, 2u);
  EXPECT_EQ(out.labels, slice.labels);
  ASSERT_EQ(out.visuals.size(), 1u);
  EXPECT_EQ(out.visuals[0].xs, viz.xs);
  EXPECT_EQ(out.visuals[0].series, viz.series);
  EXPECT_EQ(out.visuals[0].slices, viz.slices);
  EXPECT_EQ(out.visuals[0].spec, viz.spec);
  EXPECT_EQ(out.vega, slice.vega);
  EXPECT_EQ(decoded.stats.sql_queries, 3u);
  EXPECT_EQ(decoded.stats.total_ms, 0.125);
  EXPECT_EQ(decoded.stats.fetch_ms, 0.0625);
  EXPECT_EQ(decoded.stats.score_ms, 0.03125);
  EXPECT_EQ(decoded.fingerprint, "abc123");
  EXPECT_EQ(decoded.plan, response.plan);
  // Byte-stable re-encode.
  EXPECT_EQ(EncodeResponse(decoded).Dump(), wire);
}

TEST(ApiProtocolTest, NonFiniteSeriesValuesSurviveTheWire) {
  // Strict JSON has no NaN/Inf literal: the emitter writes null, and the
  // decoder must accept it back as NaN — a response containing one bad
  // aggregate must not become undecodable.
  Visualization viz;
  viz.x_attr = "year";
  viz.y_attr = "sales";
  viz.xs = {Value::Int(2014), Value::Int(2015), Value::Int(2016)};
  viz.series = {{"sales",
                 {1.5, std::numeric_limits<double>::quiet_NaN(),
                  std::numeric_limits<double>::infinity()}}};
  const std::string wire = EncodeVisualization(viz).Dump();
  ZV_ASSERT_OK_AND_ASSIGN(Json parsed, Json::Parse(wire));
  ZV_ASSERT_OK_AND_ASSIGN(Visualization decoded,
                          DecodeVisualization(parsed));
  ASSERT_EQ(decoded.series[0].ys.size(), 3u);
  EXPECT_EQ(decoded.series[0].ys[0], 1.5);
  EXPECT_TRUE(std::isnan(decoded.series[0].ys[1]));
  EXPECT_TRUE(std::isnan(decoded.series[0].ys[2]));  // Inf also -> null
}

TEST(ApiProtocolTest, MalformedRequestsAreRejected) {
  const char* bad[] = {
      "[]",                                  // not an object
      "{}",                                  // missing dataset/zql
      "{\"dataset\":\"sales\"}",             // missing zql
      "{\"dataset\":1,\"zql\":\"x\"}",       // dataset wrong type
      "{\"v\":\"one\",\"dataset\":\"sales\",\"zql\":\"*f1 | 'x' | 'y' | | | "
      "|\"}",                                // version wrong type
      "{\"dataset\":\"sales\",\"zql\":\"*f1 | 'x' | 'y' | | | |\","
      "\"opt\":\"warp9\"}",                  // unknown opt level
      "{\"dataset\":\"sales\",\"zql\":\"*f1 | 'x' | 'y' | | | |\","
      "\"page\":{\"offset\":-1}}",           // negative offset
      "{\"dataset\":\"sales\",\"zql\":\"*f1 | 'x' | 'y' | | | |\","
      "\"include_vega\":\"yes\"}",           // bool wrong type
  };
  for (const char* doc : bad) {
    ZV_ASSERT_OK_AND_ASSIGN(Json parsed, Json::Parse(doc));
    EXPECT_FALSE(DecodeRequest(parsed).ok()) << doc;
  }
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

TEST(ApiProtocolTest, EveryStatusCodeHasAStableWireMapping) {
  const StatusCode codes[] = {
      StatusCode::kOk,           StatusCode::kInvalidArgument,
      StatusCode::kParseError,   StatusCode::kNotFound,
      StatusCode::kAlreadyExists, StatusCode::kOutOfRange,
      StatusCode::kTypeMismatch, StatusCode::kUnsupported,
      StatusCode::kInternal,     StatusCode::kCancelled,
      StatusCode::kUnavailable,
  };
  for (StatusCode code : codes) {
    const std::string name = WireErrorName(code);
    EXPECT_FALSE(name.empty());
    EXPECT_EQ(WireErrorCode(name), code) << name;
    const ErrorInfo info = ErrorFromStatus(Status(code, "boom"));
    EXPECT_EQ(info.code, code);
    EXPECT_EQ(info.message, "boom");
    EXPECT_EQ(info.retryable, code == StatusCode::kUnavailable) << name;
  }
  // Unknown wire names still decode as an error, never as success.
  EXPECT_NE(WireErrorCode("from_the_future"), StatusCode::kOk);
}

TEST(ApiProtocolTest, ParseDiagnosticsFlowIntoTheErrorPayload) {
  zql::ParseDiagnostic diag;
  Result<zql::ZqlQuery> r = zql::ParseQuery(
      "*f1 | 'year' | 'sales' | | | |\n"
      "*f2 | 'year' | ??? | | | |", &diag);
  ASSERT_FALSE(r.ok());
  const ErrorInfo info = ErrorFromStatus(r.status(), &diag);
  EXPECT_EQ(info.code, StatusCode::kParseError);
  EXPECT_EQ(info.line, 2);
  EXPECT_GT(info.column, 1);
  EXPECT_EQ(info.token, "???");
  // The same structure is recoverable from the message alone.
  const ErrorInfo from_message = ErrorFromStatus(r.status());
  EXPECT_EQ(from_message.line, 2);
  EXPECT_EQ(from_message.token, "???");

  // Row-level errors carry only "line N:" (no column) — the line still
  // survives the message-only path. A header without a name column makes
  // every row fail at row level.
  Result<zql::ZqlQuery> row_err = zql::ParseQuery("x | y\n'a' | 'b'");
  ASSERT_FALSE(row_err.ok());
  EXPECT_NE(row_err.status().message().find("line 2"), std::string::npos)
      << row_err.status().message();
  const ErrorInfo row_info = ErrorFromStatus(row_err.status());
  EXPECT_EQ(row_info.line, 2);
  EXPECT_EQ(row_info.column, 0);
}

TEST(ApiProtocolTest, VersionNegotiation) {
  ZV_ASSERT_OK_AND_ASSIGN(int same, NegotiateVersion(kProtocolVersion));
  EXPECT_EQ(same, kProtocolVersion);
  // A newer client degrades to the server's version.
  ZV_ASSERT_OK_AND_ASSIGN(int newer, NegotiateVersion(kProtocolVersion + 5));
  EXPECT_EQ(newer, kProtocolVersion);
  // A prehistoric client gets a structured refusal.
  Result<int> old = NegotiateVersion(kMinProtocolVersion - 1);
  ASSERT_FALSE(old.ok());
  EXPECT_EQ(old.status().code(), StatusCode::kUnsupported);
}

// ---------------------------------------------------------------------------
// End-to-end against a live service
// ---------------------------------------------------------------------------

class ApiServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ZV_ASSERT_OK(service_.RegisterDataset(zv::testing::MakeTinySales()));
    ZV_ASSERT_OK_AND_ASSIGN(session_, service_.CreateSession());
  }

  QueryService service_;
  SessionId session_ = 0;
};

TEST_F(ApiServiceTest, ExecutePaginatesEachOutput) {
  QueryRequest request;
  request.dataset = "sales";
  request.query = QuickstartQuery();  // 3 products in the tiny table
  request.page = {1, 1};

  const QueryResponse response =
      ExecuteRequest(service_, session_, request);
  ASSERT_TRUE(response.ok()) << response.error.message;
  ASSERT_EQ(response.outputs.size(), 1u);
  const OutputSlice& slice = response.outputs[0];
  EXPECT_EQ(slice.total, 3u);
  EXPECT_EQ(slice.offset, 1u);
  ASSERT_EQ(slice.visuals.size(), 1u);
  EXPECT_EQ(slice.labels.size(), 1u);
  EXPECT_FALSE(response.fingerprint.empty());

  // An offset past the end yields an empty page, not an error.
  request.page = {10, 1};
  const QueryResponse past = ExecuteRequest(service_, session_, request);
  ASSERT_TRUE(past.ok());
  EXPECT_EQ(past.outputs[0].visuals.size(), 0u);
  EXPECT_EQ(past.outputs[0].total, 3u);
}

TEST_F(ApiServiceTest, ExplainReturnsThePhysicalPlanWithoutExecuting) {
  QueryRequest request;
  request.dataset = "sales";
  request.query = QuickstartQuery();
  request.explain = true;
  request.client_tag = "inspector";

  const uint64_t submitted_before = service_.stats().submitted;
  const QueryResponse response =
      ExecuteRequest(service_, session_, request);
  ASSERT_TRUE(response.ok()) << response.error.message;
  EXPECT_NE(response.plan.find("physical plan:"), std::string::npos);
  EXPECT_NE(response.plan.find("FetchOp"), std::string::npos);
  EXPECT_NE(response.plan.find("OutputOp"), std::string::npos);
  EXPECT_EQ(response.client_tag, "inspector");
  // Nothing was admitted or executed; no outputs, no stats.
  EXPECT_EQ(service_.stats().submitted, submitted_before);
  EXPECT_TRUE(response.outputs.empty());
  EXPECT_EQ(response.stats.sql_queries, 0u);

  // The per-query optimization override shapes the plan.
  request.optimization = zql::OptLevel::kNoOpt;
  const QueryResponse noopt = ExecuteRequest(service_, session_, request);
  ASSERT_TRUE(noopt.ok());
  EXPECT_NE(noopt.plan.find("opt=NoOpt"), std::string::npos);

  // Unknown datasets still fail in the structured way.
  request.dataset = "nope";
  const QueryResponse missing = ExecuteRequest(service_, session_, request);
  EXPECT_EQ(missing.error.code, StatusCode::kNotFound);
  EXPECT_TRUE(missing.plan.empty());

  // EXPLAIN shares execution's session lifecycle: an unknown session is
  // rejected the same way Submit rejects it.
  request.dataset = "sales";
  const QueryResponse dead_session =
      ExecuteRequest(service_, server::SessionId{999999}, request);
  EXPECT_EQ(dead_session.error.code, StatusCode::kNotFound);
  EXPECT_TRUE(dead_session.plan.empty());
}

TEST_F(ApiServiceTest, VegaPayloadsRenderPerVisualization) {
  QueryRequest request;
  request.dataset = "sales";
  request.query = QuickstartQuery();
  request.include_vega = true;
  request.page = {0, 2};

  const QueryResponse response =
      ExecuteRequest(service_, session_, request);
  ASSERT_TRUE(response.ok());
  const OutputSlice& slice = response.outputs[0];
  ASSERT_EQ(slice.vega.size(), 2u);
  for (const std::string& spec : slice.vega) {
    ZV_ASSERT_OK_AND_ASSIGN(Json parsed, Json::Parse(spec));
    ASSERT_TRUE(parsed.is_object());
    EXPECT_NE(parsed.Find("$schema"), nullptr);
    EXPECT_NE(parsed.Find("mark"), nullptr);
    EXPECT_NE(parsed.Find("data"), nullptr);
  }
}

TEST_F(ApiServiceTest, IdentityOnlyResponsesSkipData) {
  QueryRequest request;
  request.dataset = "sales";
  request.query = QuickstartQuery();
  request.include_data = false;

  const QueryResponse response =
      ExecuteRequest(service_, session_, request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.outputs[0].visuals.size(), 0u);
  EXPECT_EQ(response.outputs[0].labels.size(), 3u);
  EXPECT_EQ(response.outputs[0].total, 3u);
}

TEST_F(ApiServiceTest, StructuredErrorsFromTheServicePath) {
  // Unknown dataset -> not_found.
  QueryRequest request;
  request.dataset = "nope";
  request.query = QuickstartQuery();
  const QueryResponse nf = ExecuteRequest(service_, session_, request);
  EXPECT_EQ(nf.error.code, StatusCode::kNotFound);
  EXPECT_FALSE(nf.error.retryable);

  // Unsupported protocol version -> structured refusal, server's version.
  request.dataset = "sales";
  request.version = 0;
  const QueryResponse unsupported =
      ExecuteRequest(service_, session_, request);
  EXPECT_EQ(unsupported.error.code, StatusCode::kUnsupported);

  // Unknown session -> not_found.
  request.version = kProtocolVersion;
  const QueryResponse bad_session =
      ExecuteRequest(service_, SessionId{999999}, request);
  EXPECT_EQ(bad_session.error.code, StatusCode::kNotFound);
}

TEST_F(ApiServiceTest, WirePathSpeaksJsonBothWays) {
  const std::string request_json =
      "{\"dataset\":\"sales\",\"zql\":\"*f1 | 'year' | 'sales' | v1 <- "
      "'product'.* | location='US' | bar.(y=agg('sum')) |\","
      "\"page\":{\"limit\":1},\"include_vega\":true,\"client\":\"wire-1\"}";
  const std::string response_json =
      HandleWireRequest(service_, session_, request_json);
  ZV_ASSERT_OK_AND_ASSIGN(Json parsed, Json::Parse(response_json));
  ZV_ASSERT_OK_AND_ASSIGN(QueryResponse response, DecodeResponse(parsed));
  ASSERT_TRUE(response.ok()) << response.error.message;
  EXPECT_EQ(response.client_tag, "wire-1");
  ASSERT_EQ(response.outputs.size(), 1u);
  EXPECT_EQ(response.outputs[0].visuals.size(), 1u);
  EXPECT_EQ(response.outputs[0].vega.size(), 1u);

  // Malformed JSON comes back as a structured parse_error response.
  const std::string err_json =
      HandleWireRequest(service_, session_, "{not json");
  ZV_ASSERT_OK_AND_ASSIGN(Json err_parsed, Json::Parse(err_json));
  ZV_ASSERT_OK_AND_ASSIGN(QueryResponse err, DecodeResponse(err_parsed));
  EXPECT_EQ(err.error.code, StatusCode::kParseError);
  EXPECT_GT(err.error.line, 0);

  // A ZQL error inside valid JSON carries its diagnostics.
  const std::string zql_err_json = HandleWireRequest(
      service_, session_,
      "{\"dataset\":\"sales\",\"zql\":\"*f1 | 'year' | ??? | | | |\"}");
  ZV_ASSERT_OK_AND_ASSIGN(Json zql_parsed, Json::Parse(zql_err_json));
  ZV_ASSERT_OK_AND_ASSIGN(QueryResponse zql_err, DecodeResponse(zql_parsed));
  EXPECT_EQ(zql_err.error.code, StatusCode::kParseError);
  EXPECT_EQ(zql_err.error.line, 1);
  EXPECT_EQ(zql_err.error.token, "???");
}

TEST_F(ApiServiceTest, RepeatWireRequestsHitTheResultCache) {
  QueryRequest request;
  request.dataset = "sales";
  request.query = QuickstartQuery();
  const QueryResponse first = ExecuteRequest(service_, session_, request);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.stats.cache_hits, 0u);
  const QueryResponse second = ExecuteRequest(service_, session_, request);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.stats.cache_hits, 1u);
  EXPECT_EQ(second.fingerprint, first.fingerprint);
}

}  // namespace
}  // namespace zv::api
