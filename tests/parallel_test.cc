/// \file parallel_test.cc
/// \brief The parallel scoring subsystem: ParallelFor edge cases and error
/// propagation, thread-count-invariant ZQL results, partitioned-scan
/// aggregation merges, and ScoringContext's exactness contract against the
/// legacy pairwise Distance().

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "engine/scan_db.h"
#include "tasks/distance.h"
#include "tasks/series_cache.h"
#include "tests/test_util.h"
#include "workload/datasets.h"
#include "zql/executor.h"

namespace zv {
namespace {

/// Restores the default thread resolution when a test exits.
class ThreadGuard {
 public:
  ~ThreadGuard() {
    SetParallelThreads(0);
    unsetenv("ZV_THREADS");
  }
};

// --- ParallelFor ------------------------------------------------------------

TEST(ParallelForTest, FillsEverySlotOnce) {
  ThreadGuard guard;
  SetParallelThreads(8);
  constexpr size_t kN = 1000;
  std::vector<int> hits(kN, 0);
  ParallelFor(kN, [&](size_t i) { ++hits[i]; });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i], 1) << i;
}

TEST(ParallelForTest, ZeroIterationsIsANoop) {
  ThreadGuard guard;
  SetParallelThreads(8);
  bool called = false;
  ParallelFor(0, [&](size_t) { called = true; });
  EXPECT_FALSE(called);
  ZV_ASSERT_OK(ParallelForStatus(0, [&](size_t) {
    called = true;
    return Status::OK();
  }));
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, FewerItemsThanWorkers) {
  ThreadGuard guard;
  SetParallelThreads(16);
  std::vector<int> hits(3, 0);
  ParallelFor(3, [&](size_t i) { ++hits[i]; });
  EXPECT_EQ(hits, (std::vector<int>{1, 1, 1}));
}

TEST(ParallelForTest, SingleThreadBypassesPool) {
  ThreadGuard guard;
  SetParallelThreads(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::atomic<bool> same_thread{true};
  ParallelFor(64, [&](size_t) {
    if (std::this_thread::get_id() != caller) same_thread = false;
  });
  EXPECT_TRUE(same_thread.load());
}

TEST(ParallelForTest, EnvVariableControlsWorkerCount) {
  ThreadGuard guard;
  setenv("ZV_THREADS", "5", 1);
  EXPECT_EQ(ParallelWorkerCount(), 5u);
  setenv("ZV_THREADS", "1", 1);
  EXPECT_EQ(ParallelWorkerCount(), 1u);
  // The override wins over the environment.
  SetParallelThreads(3);
  EXPECT_EQ(ParallelWorkerCount(), 3u);
}

TEST(ParallelForTest, ExceptionPropagatesToCaller) {
  ThreadGuard guard;
  SetParallelThreads(8);
  EXPECT_THROW(ParallelFor(256,
                           [&](size_t i) {
                             if (i == 100) throw std::runtime_error("boom");
                           }),
               std::runtime_error);
}

TEST(ParallelForStatusTest, ReportsTheLowestIndexError) {
  ThreadGuard guard;
  SetParallelThreads(8);
  // Errors at several indices: the serial loop would surface index 17
  // first, and so must the parallel run, at any thread count.
  const Status s = ParallelForStatus(512, [&](size_t i) {
    if (i == 17 || i == 200 || i == 400) {
      return Status::Internal("error at " + std::to_string(i));
    }
    return Status::OK();
  });
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "error at 17");
}

TEST(ParallelForStatusTest, AllOkRunsEveryIndex) {
  ThreadGuard guard;
  SetParallelThreads(4);
  std::vector<int> hits(300, 0);
  ZV_ASSERT_OK(ParallelForStatus(300, [&](size_t i) {
    ++hits[i];
    return Status::OK();
  }));
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 300);
}

// --- ScoringContext exactness ----------------------------------------------

Visualization MakeViz(std::vector<int64_t> xs, std::vector<double> ys) {
  Visualization v;
  v.x_attr = "t";
  v.y_attr = "y";
  for (int64_t x : xs) v.xs.push_back(Value::Int(x));
  v.series = {{"y", std::move(ys)}};
  return v;
}

TEST(ScoringContextTest, MatchesPairwiseDistanceOnSharedDomain) {
  // All candidates cover the same x values -> fast path.
  std::vector<Visualization> vs = {
      MakeViz({1, 2, 3, 4}, {1, 2, 3, 4}),
      MakeViz({1, 2, 3, 4}, {4, 3, 2, 1}),
      MakeViz({1, 2, 3, 4}, {0, 5, 0, 5}),
  };
  std::vector<const Visualization*> set;
  for (const auto& v : vs) set.push_back(&v);
  for (DistanceMetric metric :
       {DistanceMetric::kEuclidean, DistanceMetric::kDtw,
        DistanceMetric::kKlDivergence, DistanceMetric::kEmd}) {
    for (Normalization norm : {Normalization::kNone, Normalization::kZScore,
                               Normalization::kMinMax}) {
      ScoringContext ctx(set, norm, Alignment::kZeroFill);
      for (size_t i = 0; i < set.size(); ++i) {
        EXPECT_TRUE(ctx.full(i));
        for (size_t j = 0; j < set.size(); ++j) {
          EXPECT_DOUBLE_EQ(
              ctx.PairDistance(i, j, metric),
              Distance(*set[i], *set[j], metric, norm, Alignment::kZeroFill));
        }
      }
    }
  }
}

TEST(ScoringContextTest, MatchesPairwiseDistanceOnDisjointDomains) {
  // Mismatched x sets -> the pairwise union differs per pair, so the
  // context must fall back to the exact pairwise restriction.
  std::vector<Visualization> vs = {
      MakeViz({1, 2, 3}, {1, 2, 3}),
      MakeViz({2, 3, 4, 5}, {5, 1, 4, 2}),
      MakeViz({10, 11}, {7, 8}),
      MakeViz({1, 5, 11}, {3, 1, 2}),
  };
  std::vector<const Visualization*> set;
  for (const auto& v : vs) set.push_back(&v);
  for (DistanceMetric metric :
       {DistanceMetric::kEuclidean, DistanceMetric::kDtw,
        DistanceMetric::kKlDivergence, DistanceMetric::kEmd}) {
    for (Alignment align : {Alignment::kZeroFill, Alignment::kInterpolate}) {
      ScoringContext ctx(set, Normalization::kZScore, align);
      for (size_t i = 0; i < set.size(); ++i) {
        for (size_t j = 0; j < set.size(); ++j) {
          EXPECT_DOUBLE_EQ(
              ctx.PairDistance(i, j, metric),
              Distance(*set[i], *set[j], metric, Normalization::kZScore,
                       align))
              << "metric=" << DistanceMetricToString(metric) << " i=" << i
              << " j=" << j;
        }
      }
    }
  }
}

TEST(ScoringContextTest, MatchesPairwiseDistanceWithMultipleSeries) {
  Visualization two_series = MakeViz({1, 2, 3}, {1, 2, 3});
  two_series.series.push_back({"z", {9, 8, 7}});
  std::vector<Visualization> vs = {
      std::move(two_series),
      MakeViz({1, 2, 3}, {2, 2, 2}),
      MakeViz({2, 3, 4}, {1, 0, 1}),
  };
  std::vector<const Visualization*> set;
  for (const auto& v : vs) set.push_back(&v);
  ScoringContext ctx(set, Normalization::kZScore, Alignment::kZeroFill);
  for (size_t i = 0; i < set.size(); ++i) {
    for (size_t j = 0; j < set.size(); ++j) {
      EXPECT_DOUBLE_EQ(ctx.PairDistance(i, j, DistanceMetric::kEuclidean),
                       Distance(*set[i], *set[j], DistanceMetric::kEuclidean,
                                Normalization::kZScore, Alignment::kZeroFill))
          << "i=" << i << " j=" << j;
    }
  }
}

// --- thread-count-invariant ZQL results -------------------------------------

/// Structural equality of executor outputs, down to every double.
void ExpectSameResults(const zql::ZqlResult& a, const zql::ZqlResult& b) {
  ASSERT_EQ(a.outputs.size(), b.outputs.size());
  for (size_t o = 0; o < a.outputs.size(); ++o) {
    SCOPED_TRACE("output " + a.outputs[o].name);
    EXPECT_EQ(a.outputs[o].name, b.outputs[o].name);
    ASSERT_EQ(a.outputs[o].visuals.size(), b.outputs[o].visuals.size());
    for (size_t v = 0; v < a.outputs[o].visuals.size(); ++v) {
      const Visualization& va = a.outputs[o].visuals[v];
      const Visualization& vb = b.outputs[o].visuals[v];
      EXPECT_EQ(va.Label(), vb.Label());
      EXPECT_EQ(va.xs, vb.xs);
      ASSERT_EQ(va.series.size(), vb.series.size());
      for (size_t s = 0; s < va.series.size(); ++s) {
        EXPECT_EQ(va.series[s].ys, vb.series[s].ys);  // exact doubles
      }
    }
  }
}

class ParallelZqlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ZV_ASSERT_OK(db_.RegisterTable(testing::MakeTinySales()));
  }

  zql::ZqlResult Run(const std::string& text) {
    zql::ZqlExecutor exec(&db_, "sales");
    auto result = exec.ExecuteText(text);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? std::move(result).value() : zql::ZqlResult{};
  }

  ScanDatabase db_;
};

TEST_F(ParallelZqlTest, ScoringIsThreadCountInvariant) {
  ThreadGuard guard;
  // Distance scoring over every product x location pair, then a trend
  // filter — exercises the ScoringContext fast path and the parallel
  // RunProcess loop.
  const std::string query =
      "f1 | 'year' | 'sales' | v1 <- 'product'.* | location='US' | "
      "bar.(y=agg('sum')) |\n"
      "f2 | 'year' | 'sales' | v1 | location='UK' | bar.(y=agg('sum')) | "
      "v2 <- argmax_v1[k=2] D(f1, f2)\n"
      "*f3 | 'year' | 'profit' | v2 | | bar.(y=agg('sum')) |";
  SetParallelThreads(1);
  const zql::ZqlResult serial = Run(query);
  SetParallelThreads(8);
  const zql::ZqlResult parallel = Run(query);
  ExpectSameResults(serial, parallel);

  // Same invariance through the environment variable path.
  setenv("ZV_THREADS", "8", 1);
  SetParallelThreads(0);
  const zql::ZqlResult via_env = Run(query);
  ExpectSameResults(serial, via_env);
}

TEST_F(ParallelZqlTest, TrendScoringIsThreadCountInvariant) {
  ThreadGuard guard;
  const std::string query =
      "f1 | 'year' | 'sales' | v1 <- 'product'.* | location='US' | "
      "bar.(y=agg('sum')) | v2 <- argany_v1[t > 0] T(f1)\n"
      "*f2 | 'year' | 'profit' | v2 | | bar.(y=agg('sum')) |";
  SetParallelThreads(1);
  const zql::ZqlResult serial = Run(query);
  SetParallelThreads(8);
  const zql::ZqlResult parallel = Run(query);
  ExpectSameResults(serial, parallel);
}

TEST_F(ParallelZqlTest, ProcessErrorsAreStillReported) {
  ThreadGuard guard;
  // D(f1, f2) where f2 iterates a variable the process never binds — the
  // error fires *inside* the scoring loop and must surface identically at
  // any thread count.
  const std::string query =
      "f1 | 'year' | 'sales' | v1 <- 'product'.* | location='US' | "
      "bar.(y=agg('sum')) |\n"
      "f2 | 'year' | 'sales' | v3 <- 'location'.* | | bar.(y=agg('sum')) | "
      "v2 <- argmax_v1[k=1] D(f1, f2)\n"
      "*f3 | 'year' | 'profit' | v2 | | bar.(y=agg('sum')) |";
  SetParallelThreads(1);
  zql::ZqlExecutor serial_exec(&db_, "sales");
  auto serial = serial_exec.ExecuteText(query);
  ASSERT_FALSE(serial.ok());
  SetParallelThreads(8);
  zql::ZqlExecutor parallel_exec(&db_, "sales");
  auto parallel = parallel_exec.ExecuteText(query);
  ASSERT_FALSE(parallel.ok());
  EXPECT_EQ(serial.status().message(), parallel.status().message());
}

// --- partitioned scan ------------------------------------------------------

void ExpectSameResultSet(const ResultSet& a, const ResultSet& b) {
  EXPECT_EQ(a.columns, b.columns);
  ASSERT_EQ(a.rows.size(), b.rows.size());
  for (size_t i = 0; i < a.rows.size(); ++i) {
    EXPECT_EQ(a.rows[i], b.rows[i]) << "row " << i;
  }
}

TEST(ParallelScanTest, ShardedAggregationMatchesSerial) {
  ThreadGuard guard;
  SalesDataOptions opts;
  // Above the blocked-scan threshold: the scan runs as per-block runners
  // merged in block order. The block structure depends only on the table
  // size, so every thread count — including 1 — produces identical bytes.
  opts.num_rows = 50000;
  opts.num_products = 20;
  ScanDatabase db;
  ZV_ASSERT_OK(db.RegisterTable(MakeSalesTable(opts)));

  const std::vector<std::string> queries = {
      // dense group-by over two categorical columns
      "SELECT product, year, SUM(sales), COUNT(*), MIN(profit), MAX(profit) "
      "FROM sales GROUP BY product, year ORDER BY product, year",
      // filtered aggregate
      "SELECT year, AVG(sales) FROM sales WHERE location = 'US' "
      "GROUP BY year ORDER BY year",
      // global aggregate, no group-by
      "SELECT SUM(profit), COUNT(*) FROM sales",
      // plain projection with a predicate
      "SELECT year, product, sales FROM sales WHERE sales > 900 "
      "ORDER BY year",
  };
  for (const std::string& q : queries) {
    SCOPED_TRACE(q);
    SetParallelThreads(1);
    auto serial = db.ExecuteSql(q);
    ZV_ASSERT_OK(serial.status());
    SetParallelThreads(8);
    auto parallel = db.ExecuteSql(q);
    ZV_ASSERT_OK(parallel.status());
    ExpectSameResultSet(*serial, *parallel);
  }
}

TEST(ParallelScanTest, TinyTableMatchesSerial) {
  ThreadGuard guard;
  ScanDatabase db;
  ZV_ASSERT_OK(db.RegisterTable(testing::MakeTinySales()));
  const std::string q =
      "SELECT product, SUM(sales) FROM sales GROUP BY product ORDER BY "
      "product";
  SetParallelThreads(1);
  auto serial = db.ExecuteSql(q);
  ZV_ASSERT_OK(serial.status());
  SetParallelThreads(8);
  auto parallel = db.ExecuteSql(q);
  ZV_ASSERT_OK(parallel.status());
  ExpectSameResultSet(*serial, *parallel);
}

}  // namespace
}  // namespace zv
