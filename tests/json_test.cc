/// \file json_test.cc
/// \brief The JSON codec's contracts: value-model round trips (including a
/// randomized property sweep), number fidelity (int64 vs double, shortest
/// round-trip doubles), string escapes, and malformed-input rejection.

#include <cstring>
#include <functional>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "tests/test_util.h"

namespace zv {
namespace {

TEST(JsonTest, ScalarsRoundTrip) {
  const char* docs[] = {
      "null", "true", "false", "0", "-1", "42", "9223372036854775807",
      "-9223372036854775808", "0.5", "-3.25", "1e+20", "\"\"",
      "\"hello world\"", "[]", "{}",
  };
  for (const char* doc : docs) {
    ZV_ASSERT_OK_AND_ASSIGN(Json v, Json::Parse(doc));
    ZV_ASSERT_OK_AND_ASSIGN(Json again, Json::Parse(v.Dump()));
    EXPECT_EQ(v, again) << doc;
  }
}

TEST(JsonTest, IntegersStayIntegers) {
  ZV_ASSERT_OK_AND_ASSIGN(Json v, Json::Parse("[1, 2.0, -7, 1e2]"));
  EXPECT_TRUE(v.array()[0].is_int());
  EXPECT_TRUE(v.array()[1].is_double());
  EXPECT_TRUE(v.array()[2].is_int());
  EXPECT_TRUE(v.array()[3].is_double());
  EXPECT_EQ(v.array()[0].as_int(), 1);
  EXPECT_EQ(v.array()[1].as_double(), 2.0);
  // int64 extremes survive exactly (a double would lose the low bits).
  ZV_ASSERT_OK_AND_ASSIGN(Json big, Json::Parse("9223372036854775807"));
  EXPECT_TRUE(big.is_int());
  EXPECT_EQ(big.as_int(), INT64_MAX);
  EXPECT_EQ(big.Dump(), "9223372036854775807");
  // Beyond int64: degrades to double instead of failing.
  ZV_ASSERT_OK_AND_ASSIGN(Json huge, Json::Parse("18446744073709551616"));
  EXPECT_TRUE(huge.is_double());
}

TEST(JsonTest, DoublesRoundTripBitExact) {
  const double values[] = {0.1,      1.0 / 3.0, 6.02214076e23, -2.5e-10,
                           123456.75, 1e300,    5e-324 /* min denormal */};
  for (double d : values) {
    const std::string text = Json::Double(d).Dump();
    ZV_ASSERT_OK_AND_ASSIGN(Json parsed, Json::Parse(text));
    ASSERT_TRUE(parsed.is_double()) << text;
    uint64_t want, got;
    const double pd = parsed.as_double();
    std::memcpy(&want, &d, sizeof(want));
    std::memcpy(&got, &pd, sizeof(got));
    EXPECT_EQ(want, got) << text;
  }
  // Non-finite doubles emit as null (strict JSON has no literal for them).
  EXPECT_EQ(Json::Double(std::nan("")).Dump(), "null");
}

TEST(JsonTest, StringEscapes) {
  const std::string raw = "line1\nline2\t\"quoted\"\\slash\x01";
  const std::string text = Json::Str(raw).Dump();
  ZV_ASSERT_OK_AND_ASSIGN(Json parsed, Json::Parse(text));
  EXPECT_EQ(parsed.as_string(), raw);
  // \u escapes decode to UTF-8, including surrogate pairs.
  ZV_ASSERT_OK_AND_ASSIGN(Json uni, Json::Parse("\"\\u00e9\\ud83d\\ude00\""));
  EXPECT_EQ(uni.as_string(), "\xc3\xa9\xf0\x9f\x98\x80");
  // Raw UTF-8 passes through emission untouched.
  EXPECT_EQ(Json::Str("\xc3\xa9").Dump(), "\"\xc3\xa9\"");
}

TEST(JsonTest, ObjectsPreserveInsertionOrderAndReplace) {
  Json obj = Json::MakeObject();
  obj.Set("b", Json::Int(1));
  obj.Set("a", Json::Int(2));
  obj.Set("b", Json::Int(3));  // replaces in place, keeps position
  EXPECT_EQ(obj.Dump(), "{\"b\":3,\"a\":2}");
  EXPECT_EQ(obj.Find("b")->as_int(), 3);
  EXPECT_EQ(obj.Find("missing"), nullptr);
}

TEST(JsonTest, PrettyAndCompactFormsParseAlike) {
  ZV_ASSERT_OK_AND_ASSIGN(
      Json v, Json::Parse("{\"a\":[1,2,{\"b\":null}],\"c\":\"x\"}"));
  ZV_ASSERT_OK_AND_ASSIGN(Json pretty, Json::Parse(v.Dump(2)));
  EXPECT_EQ(v, pretty);
  // Compact emission is byte-stable through a round trip.
  EXPECT_EQ(v.Dump(), pretty.Dump());
}

/// Randomized property test: generate value trees, require
/// parse(dump(v)) == v for both compact and indented forms.
TEST(JsonTest, RandomTreesRoundTrip) {
  std::mt19937 rng(20260731);
  std::uniform_int_distribution<int> kind(0, 6);
  std::uniform_int_distribution<int> width(0, 4);
  std::uniform_int_distribution<int64_t> ints(INT64_MIN, INT64_MAX);
  std::uniform_real_distribution<double> reals(-1e6, 1e6);
  std::uniform_int_distribution<int> chars(0, 255);

  std::function<Json(int)> gen = [&](int depth) -> Json {
    const int k = depth > 3 ? kind(rng) % 5 : kind(rng);
    switch (k) {
      case 0: return Json::Null();
      case 1: return Json::Bool(rng() % 2 == 0);
      case 2: return Json::Int(ints(rng));
      case 3: return Json::Double(reals(rng));
      case 4: {
        std::string s;
        const int n = width(rng) * 3;
        for (int i = 0; i < n; ++i) {
          s += static_cast<char>(chars(rng) % 0x70 + 1);  // ASCII-ish
        }
        return Json::Str(s);
      }
      case 5: {
        Json arr = Json::MakeArray();
        const int n = width(rng);
        for (int i = 0; i < n; ++i) arr.Append(gen(depth + 1));
        return arr;
      }
      default: {
        Json obj = Json::MakeObject();
        const int n = width(rng);
        for (int i = 0; i < n; ++i) {
          obj.Set("k" + std::to_string(i), gen(depth + 1));
        }
        return obj;
      }
    }
  };

  for (int i = 0; i < 500; ++i) {
    const Json v = gen(0);
    ZV_ASSERT_OK_AND_ASSIGN(Json compact, Json::Parse(v.Dump()));
    EXPECT_EQ(v, compact) << v.Dump();
    ZV_ASSERT_OK_AND_ASSIGN(Json pretty, Json::Parse(v.Dump(2)));
    EXPECT_EQ(v, pretty) << v.Dump(2);
  }
}

TEST(JsonTest, MalformedInputsAreRejectedWithPositions) {
  const char* bad[] = {
      "",
      "   ",
      "{",
      "[1, 2",
      "{\"a\":}",
      "{\"a\" 1}",
      "{a: 1}",
      "[1,]",         // trailing comma
      "{\"a\":1,}",
      "01",            // leading zero
      "1.",            // missing fraction digits
      "1e",            // missing exponent digits
      "+1",
      "nul",
      "tru",
      "\"unterminated",
      "\"bad \\q escape\"",
      "\"\\u12\"",     // truncated \u
      "\"\\ud800\"",   // unpaired surrogate
      "\"ctrl \x01 char\"",
      "[1] trailing",
      "NaN",
      "Infinity",
  };
  for (const char* doc : bad) {
    Result<Json> r = Json::Parse(doc);
    EXPECT_FALSE(r.ok()) << "should reject: " << doc;
    if (!r.ok()) {
      EXPECT_EQ(r.status().code(), StatusCode::kParseError);
      EXPECT_NE(r.status().message().find("line "), std::string::npos)
          << r.status().message();
    }
  }
  // Deep nesting is bounded, not a stack overflow.
  std::string deep(1000, '[');
  deep += std::string(1000, ']');
  EXPECT_FALSE(Json::Parse(deep).ok());
}

TEST(JsonTest, DuplicateKeysLastWins) {
  ZV_ASSERT_OK_AND_ASSIGN(Json v, Json::Parse("{\"a\":1,\"a\":2}"));
  EXPECT_EQ(v.size(), 1u);
  EXPECT_EQ(v.Find("a")->as_int(), 2);
}

}  // namespace
}  // namespace zv
