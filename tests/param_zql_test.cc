/// \file param_zql_test.cc
/// \brief Parameterized sweep: every paper query x every optimization level
/// x both backends must produce identical visualizations — the §5.2
/// optimizations are pure rewrites.

#include <memory>
#include <tuple>

#include <gtest/gtest.h>

#include "engine/roaring_db.h"
#include "engine/scan_db.h"
#include "tests/test_util.h"
#include "workload/datasets.h"
#include "zql/executor.h"

namespace zv::zql {
namespace {

struct ZqlCase {
  const char* label;
  const char* text;
};

const ZqlCase kQueries[] = {
    {"Collection",
     "*f1 | 'year' | 'sales' | v1 <- 'product'.* | country='US' | "
     "bar.(y=agg('sum')) |"},
    {"TrendIntersection",
     "f1 | 'year' | 'sales' | v1 <- 'product'.* | country='US' | | v2 <- "
     "argany_v1[t > 0] T(f1)\n"
     "f2 | 'year' | 'sales' | v1 | country='UK' | | v3 <- argany_v1[t < 0] "
     "T(f2)\n"
     "*f3 | 'year' | 'profit' | v4 <- (v2.range & v3.range) | | |"},
    {"TopKSimilarity",
     "f1 | 'year' | 'sales' | 'product'.'product0' | | |\n"
     "f2 | 'year' | 'sales' | v1 <- 'product'.(* - 'product0') | | | v2 <- "
     "argmin_v1[k=3] D(f1, f2)\n"
     "*f3 | 'year' | 'sales' | v2 | | |"},
    {"Representative",
     "f1 | 'year' | 'sales' | v1 <- 'product'.* | | | v2 <- R(3, v1, f1)\n"
     "*f2 | 'year' | 'sales' | v2 | | |"},
    {"Outlier",
     "f1 | 'year' | 'sales' | v1 <- 'product'.* | | | v2 <- R(3, v1, f1)\n"
     "f2 | 'year' | 'sales' | v2 | | |\n"
     "f3 | 'year' | 'sales' | v1 | | | v3 <- argmax_v1[k=2] min_v2 D(f3, "
     "f2)\n"
     "*f4 | 'year' | 'sales' | v3 | | |"},
    {"MultiY",
     "f1 | 'month' | 'profit' | v1 <- 'product'.* | year=2015 | "
     "bar.(y=agg('sum')) |\n"
     "f2 | 'month' | 'sales' | v1 | year=2015 | bar.(y=agg('sum')) | v2 <- "
     "argmax_v1[k=4] D(f1, f2)\n"
     "*f3 | 'month' | y1 <- {'sales', 'profit'} | v2 | year=2015 | "
     "bar.(y=agg('sum')) |"},
    {"RangeConstraint",
     "f1 | 'year' | 'sales' | v1 <- 'product'.* | | | v2 <- argmax_v1[k=4] "
     "T(f1)\n"
     "*f2 | 'year' | 'profit' | | product IN (v2.range) | |"},
    {"Ordering",
     "f1 | 'year' | 'sales' | v1 <- 'product'.* | country='US' | | u1 <- "
     "argmin_v1[k=inf] T(f1)\n"
     "*f2=f1.order | | | u1 -> | | |"},
};

using Combo = std::tuple<int, OptLevel, bool>;  // query idx, level, roaring?

class ZqlComboTest : public ::testing::TestWithParam<Combo> {
 protected:
  static std::shared_ptr<Table> SharedTable() {
    static std::shared_ptr<Table> table = [] {
      SalesDataOptions opts;
      opts.num_rows = 20000;
      opts.num_products = 10;
      return MakeSalesTable(opts);
    }();
    return table;
  }

  static Database* GetBackend(bool roaring) {
    static ScanDatabase* scan = [] {
      auto* db = new ScanDatabase();
      EXPECT_TRUE(db->RegisterTable(SharedTable()).ok());
      return db;
    }();
    static RoaringDatabase* rdb = [] {
      auto* db = new RoaringDatabase();
      EXPECT_TRUE(db->RegisterTable(SharedTable()).ok());
      return db;
    }();
    return roaring ? static_cast<Database*>(rdb) : scan;
  }

  /// Reference result: scan backend, NoOpt (the §5.1 naive compiler).
  static const ZqlResult& Reference(int query_idx) {
    static std::map<int, ZqlResult> cache;
    auto it = cache.find(query_idx);
    if (it == cache.end()) {
      ZqlOptions opts;
      opts.optimization = OptLevel::kNoOpt;
      ZqlExecutor exec(GetBackend(false), "sales", opts);
      auto r = exec.ExecuteText(kQueries[query_idx].text);
      EXPECT_TRUE(r.ok()) << r.status().ToString();
      it = cache.emplace(query_idx, std::move(r).value()).first;
    }
    return it->second;
  }
};

TEST_P(ZqlComboTest, MatchesNaiveReference) {
  const auto [query_idx, level, roaring] = GetParam();
  ZqlOptions opts;
  opts.optimization = level;
  ZqlExecutor exec(GetBackend(roaring), "sales", opts);
  ZV_ASSERT_OK_AND_ASSIGN(ZqlResult got,
                          exec.ExecuteText(kQueries[query_idx].text));
  const ZqlResult& want = Reference(query_idx);
  ASSERT_EQ(got.outputs.size(), want.outputs.size());
  for (size_t o = 0; o < got.outputs.size(); ++o) {
    ASSERT_EQ(got.outputs[o].visuals.size(), want.outputs[o].visuals.size())
        << "output " << want.outputs[o].name;
    for (size_t v = 0; v < got.outputs[o].visuals.size(); ++v) {
      const Visualization& a = want.outputs[o].visuals[v];
      const Visualization& b = got.outputs[o].visuals[v];
      EXPECT_TRUE(a.SameSourceAs(b))
          << a.Label() << " vs " << b.Label();
      EXPECT_EQ(a.xs, b.xs) << a.Label();
      ASSERT_EQ(a.series.size(), b.series.size());
      for (size_t s = 0; s < a.series.size(); ++s) {
        ASSERT_EQ(a.series[s].ys.size(), b.series[s].ys.size());
        for (size_t i = 0; i < a.series[s].ys.size(); ++i) {
          EXPECT_NEAR(a.series[s].ys[i], b.series[s].ys[i],
                      1e-6 * (1 + std::abs(a.series[s].ys[i])));
        }
      }
    }
  }
}

std::string ComboName(const ::testing::TestParamInfo<Combo>& info) {
  const auto [query_idx, level, roaring] = info.param;
  std::string name = kQueries[query_idx].label;
  switch (level) {
    case OptLevel::kNoOpt:
      name += "_NoOpt";
      break;
    case OptLevel::kIntraLine:
      name += "_IntraLine";
      break;
    case OptLevel::kIntraTask:
      name += "_IntraTask";
      break;
    case OptLevel::kInterTask:
      name += "_InterTask";
      break;
  }
  name += roaring ? "_Roaring" : "_Scan";
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    QueryByLevelByBackend, ZqlComboTest,
    ::testing::Combine(
        ::testing::Range(0, static_cast<int>(std::size(kQueries))),
        ::testing::Values(OptLevel::kNoOpt, OptLevel::kIntraLine,
                          OptLevel::kIntraTask, OptLevel::kInterTask),
        ::testing::Bool()),
    ComboName);

}  // namespace
}  // namespace zv::zql
