/// \file server_test.cc
/// \brief Serving-layer contracts: concurrent multi-session execution is
/// byte-identical to serial; repeat queries hit the ResultCache; a table
/// mutation (epoch bump) invalidates; Cancel() of an in-flight DTW scan
/// returns kCancelled promptly and leaves the service healthy; admission
/// control rejects overload with kUnavailable; sessions expire by TTL and
/// execute their own queries in FIFO order.

#include <atomic>
#include <chrono>
#include <cstring>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/cancel.h"
#include "common/clock.h"
#include "common/lru_cache.h"
#include "common/parallel.h"
#include "common/strings.h"
#include "engine/roaring_db.h"
#include "server/fingerprint.h"
#include "server/query_service.h"
#include "tests/test_util.h"
#include "zql/builder.h"
#include "zql/canonical.h"
#include "zql/executor.h"

namespace zv {
namespace {

using server::CanonicalZql;
using server::QueryFingerprint;
using server::QueryHandle;
using server::QueryService;
using server::ServiceOptions;
using server::SessionId;

/// Canonical byte rendering of a result: identities plus the exact bit
/// patterns of every double, so "byte-identical" means what it says.
std::string Canon(const zql::ZqlResult& r) {
  std::string out;
  auto hex = [&](double d) {
    uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    out += StrFormat("%016llx,", static_cast<unsigned long long>(bits));
  };
  for (const auto& o : r.outputs) {
    out += o.name;
    out += '[';
    for (const auto& v : o.visuals) {
      out += v.Label();
      out += '(';
      for (const auto& x : v.xs) {
        out += x.ToString();
        out += ',';
      }
      for (const auto& s : v.series) {
        out += s.name;
        out += ':';
        for (double y : s.ys) hex(y);
      }
      out += ')';
    }
    out += ']';
  }
  return out;
}

/// A table of `num_series` random-walk series, each `width` points long —
/// the shape that makes DTW scans expensive (O(width^2) per pair).
std::shared_ptr<Table> MakeWaves(size_t num_series, size_t width,
                                 uint64_t seed = 5, double drift = 0.0) {
  Schema schema({
      {"t", ColumnType::kCategorical},
      {"sid", ColumnType::kCategorical},
      {"y", ColumnType::kDouble},
  });
  TableBuilder b("waves", schema);
  std::mt19937 rng(static_cast<uint32_t>(seed));
  std::normal_distribution<double> step(0.0, 1.0);
  for (size_t s = 0; s < num_series; ++s) {
    double level = step(rng) * 10;
    for (size_t t = 0; t < width; ++t) {
      level += step(rng) + drift;
      b.AppendCategorical(0, Value::Int(static_cast<int64_t>(t)));
      b.AppendCategorical(1, Value::Str("s" + std::to_string(s)));
      b.AppendDouble(2, level);
      b.CommitRow();
    }
  }
  return b.Finish();
}

/// argmin over v1 of (min over v2 of D) — every combination hides an inner
/// scan, so the full evaluation is O(num_series^2) DTW pairs: seconds of
/// work, the "long scan" the cancellation tests interrupt.
const char* const kAllPairsQuery =
    "f1 | 't' | 'y' | v1 <- 'sid'.* | | |\n"
    "*f2 | 't' | 'y' | v2 <- 'sid'.* | | | v3 <- "
    "argmin_v1[k=1] min_v2 D(f1, f2)";

ServiceOptions DtwServiceOptions() {
  ServiceOptions opts;
  TaskOptions topts;
  topts.metric = DistanceMetric::kDtw;
  opts.zql.tasks = TaskLibrary::Default(topts);
  return opts;
}

/// Polls `service` until at least one query is executing (deadline 10 s).
bool WaitUntilInFlight(QueryService& service) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    if (service.stats().in_flight > 0) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return false;
}

/// Forces the ParallelFor worker count for the test's scope (the pool
/// fans out even on a 1-core machine, exercising chunk-boundary checks).
class ScopedThreads {
 public:
  explicit ScopedThreads(size_t n) { SetParallelThreads(n); }
  ~ScopedThreads() { SetParallelThreads(0); }
};

// ---------------------------------------------------------------------------
// Fingerprinting
// ---------------------------------------------------------------------------

TEST(FingerprintTest, CanonicalZqlNormalizesOutsideQuotes) {
  EXPECT_EQ(CanonicalZql("  f1 |\t 'year'   | 'a  b'  \n\n *f2 | x |"),
            "f1 | 'year' | 'a  b'\n*f2 | x |\n");
  // Whitespace inside string literals survives; outside it collapses.
  EXPECT_EQ(CanonicalZql("f1|'x  y'|  z"), "f1|'x  y'| z\n");
  EXPECT_EQ(CanonicalZql(""), "");
  EXPECT_EQ(CanonicalZql("\n  \n"), "");
}

TEST(FingerprintTest, CoversEveryResultRelevantCoordinate) {
  const std::string base = QueryFingerprint(
      "sales", 1, "roaring", zql::OptLevel::kInterTask, "f1 | x |\n", "");
  // Cosmetic retyping: same fingerprint.
  EXPECT_EQ(base, QueryFingerprint("sales", 1, "roaring",
                                   zql::OptLevel::kInterTask,
                                   CanonicalZql("  f1 \t|  x |"), ""));
  // Any real coordinate change: different fingerprint.
  EXPECT_NE(base, QueryFingerprint("sales", 2, "roaring",
                                   zql::OptLevel::kInterTask, "f1 | x |\n",
                                   ""));
  EXPECT_NE(base, QueryFingerprint("census", 1, "roaring",
                                   zql::OptLevel::kInterTask, "f1 | x |\n",
                                   ""));
  EXPECT_NE(base, QueryFingerprint("sales", 1, "scan",
                                   zql::OptLevel::kInterTask, "f1 | x |\n",
                                   ""));
  EXPECT_NE(base, QueryFingerprint("sales", 1, "roaring",
                                   zql::OptLevel::kNoOpt, "f1 | x |\n", ""));
  EXPECT_NE(base, QueryFingerprint("sales", 1, "roaring",
                                   zql::OptLevel::kInterTask, "f1 | y |\n",
                                   ""));
  EXPECT_NE(base, QueryFingerprint("sales", 1, "roaring",
                                   zql::OptLevel::kInterTask, "f1 | x |\n",
                                   "sketchhash"));
}

TEST(LruCacheTest, EvictsLeastRecentlyUsedUnderByteBudget) {
  ShardedLruCache<std::string> cache(/*max_bytes=*/100, /*shards=*/1);
  auto val = [](const char* s) { return std::make_shared<std::string>(s); };
  cache.Put("a", val("a"), 40);
  cache.Put("b", val("b"), 40);
  EXPECT_NE(cache.Get("a"), nullptr);  // refresh a: b is now LRU
  cache.Put("c", val("c"), 40);        // 120 > 100: evicts b
  EXPECT_NE(cache.Get("a"), nullptr);
  EXPECT_EQ(cache.Get("b"), nullptr);
  EXPECT_NE(cache.Get("c"), nullptr);
  EXPECT_EQ(cache.evictions(), 1u);
  // Entries larger than the budget are not cached at all.
  cache.Put("huge", val("huge"), 500);
  EXPECT_EQ(cache.Get("huge"), nullptr);
}

// ---------------------------------------------------------------------------
// Byte-identity under concurrency
// ---------------------------------------------------------------------------

TEST(QueryServiceTest, ConcurrentSessionsByteIdenticalToSerial) {
  auto table = zv::testing::MakeTinySales();
  const std::vector<std::string> queries = {
      // Similarity search; the output iterates the selection.
      "f1 | 'year' | 'sales' | 'product'.'chair' | | |\n"
      "f2 | 'year' | 'sales' | v1 <- 'product'.* | | | v2 <- "
      "argmin_v1[k=2] D(f2, f1)\n"
      "*f3 | 'year' | 'profit' | v2 | | |",
      // Trend filter.
      "*f1 | 'year' | 'sales' | v1 <- 'product'.* | location='US' | | v2 "
      "<- argany_v1[t > 0] T(f1)",
      // Two Processes sharing one candidate set (context dedupe inside).
      "f1 | 'year' | 'profit' | 'product'.'desk' | | |\n"
      "*f2 | 'year' | 'profit' | v1 <- 'product'.* | | | (v2 <- "
      "argmin_v1[k=1] D(f2, f1)), (v3 <- argmax_v1[k=1] D(f2, f1))",
      // User-drawn sketch as the reference.
      "-f1 | 'year' | 'sales' | | | |\n"
      "*f2 | 'year' | 'sales' | v1 <- 'product'.* | | | v2 <- "
      "argmin_v1[k=1] D(f2, f1)",
  };
  Visualization sketch;
  sketch.x_attr = "year";
  sketch.y_attr = "sales";
  sketch.xs = {Value::Int(2014), Value::Int(2015), Value::Int(2016)};
  sketch.series = {{"sales", {5.0, 1.0, 9.0}}};

  // Serial reference: a bare executor, no serving layer, no caches.
  std::vector<std::string> expected;
  {
    RoaringDatabase db;
    ZV_ASSERT_OK(db.RegisterTable(table));
    for (const std::string& q : queries) {
      zql::ZqlExecutor exec(&db, "sales");
      exec.SetUserInput("f1", sketch);
      ZV_ASSERT_OK_AND_ASSIGN(zql::ZqlResult r, exec.ExecuteText(q));
      expected.push_back(Canon(r));
    }
  }

  ScopedThreads threads(3);  // pool scoring under the service workers
  QueryService service;
  ZV_ASSERT_OK(service.RegisterDataset(table));
  constexpr size_t kSessions = 4;
  constexpr size_t kRounds = 2;  // round 2 is served from the caches
  std::vector<SessionId> sessions;
  for (size_t s = 0; s < kSessions; ++s) {
    ZV_ASSERT_OK_AND_ASSIGN(SessionId id, service.CreateSession());
    ZV_ASSERT_OK(service.SetUserInput(id, "f1", sketch));
    sessions.push_back(id);
  }
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (size_t s = 0; s < kSessions; ++s) {
    clients.emplace_back([&, s] {
      for (size_t round = 0; round < kRounds; ++round) {
        for (size_t q = 0; q < queries.size(); ++q) {
          auto submitted = service.Submit(sessions[s], "sales", queries[q]);
          if (!submitted.ok()) {
            ++mismatches;
            continue;
          }
          QueryHandle handle = std::move(submitted).value();
          if (!handle.Wait().ok() ||
              Canon(*handle.result()) != expected[q]) {
            ++mismatches;
          }
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0)
      << "concurrent session results diverged from serial execution";
  const auto stats = service.stats();
  EXPECT_EQ(stats.submitted, kSessions * kRounds * queries.size());
  EXPECT_GT(stats.cache_hits, 0u);  // round 2 (at least) hit
}

// ---------------------------------------------------------------------------
// Caching
// ---------------------------------------------------------------------------

TEST(QueryServiceTest, RepeatQueryServedFromResultCache) {
  QueryService service;
  ZV_ASSERT_OK(service.RegisterDataset(zv::testing::MakeTinySales()));
  ZV_ASSERT_OK_AND_ASSIGN(SessionId session, service.CreateSession());
  const std::string q =
      "f1 | 'year' | 'sales' | 'product'.'chair' | | |\n"
      "*f2 | 'year' | 'sales' | v1 <- 'product'.* | | | v2 <- "
      "argmin_v1[k=2] D(f2, f1)";

  ZV_ASSERT_OK_AND_ASSIGN(QueryHandle first,
                          service.Submit(session, "sales", q));
  ZV_ASSERT_OK(first.Wait());
  EXPECT_EQ(first.stats().cache_hits, 0u);
  EXPECT_EQ(first.stats().cache_misses, 1u);

  // Cosmetically different text, same canonical query: still a hit.
  const std::string retyped =
      "f1 | 'year' | 'sales' |   'product'.'chair' | | |\n"
      "*f2 |\t'year' | 'sales' | v1 <- 'product'.* | | |  v2 <- "
      "argmin_v1[k=2]  D(f2, f1)";
  ZV_ASSERT_OK_AND_ASSIGN(QueryHandle second,
                          service.Submit(session, "sales", retyped));
  ZV_ASSERT_OK(second.Wait());
  EXPECT_EQ(second.stats().cache_hits, 1u);
  EXPECT_EQ(Canon(*second.result()), Canon(*first.result()));
  EXPECT_EQ(service.stats().cache_hits, 1u);
}

TEST(QueryServiceTest, TypedAndTextSubmissionsShareOneCacheEntry) {
  // The PR-4 unification contract: a ZqlBuilder-built query and its
  // equivalent ZQL text produce the same QueryFingerprint (the cache key is
  // the canonical AST serialization, not source text), so the second
  // submission — through the *other* entry point — is a ResultCache hit.
  QueryService service;
  ZV_ASSERT_OK(service.RegisterDataset(zv::testing::MakeTinySales()));
  ZV_ASSERT_OK_AND_ASSIGN(SessionId session, service.CreateSession());

  zql::ZqlQuery built =
      zql::ZqlBuilder()
          .Row("f1")
              .X("year").Y("sales").Z("product", "chair")
          .Row("f2").Output()
              .X("year").Y("sales")
              .ZDeclare("v1", zql::ZSet::All("product"))
              .Process(zql::ProcessBuilder({"v2"}).ArgMin({"v1"}).K(2).Call(
                  "D", {"f2", "f1"}))
          .Build().ValueOrDie();
  const std::string text =
      "f1 | 'year' | 'sales' | 'product'.'chair' | | |\n"
      "*f2 | 'year' | 'sales' | v1 <- 'product'.* | | | v2 <- "
      "argmin_v1[k=2] D(f2, f1)";

  ZV_ASSERT_OK_AND_ASSIGN(QueryHandle typed,
                          service.Submit(session, "sales", built));
  ZV_ASSERT_OK(typed.Wait());
  EXPECT_EQ(typed.stats().cache_misses, 1u);

  ZV_ASSERT_OK_AND_ASSIGN(QueryHandle texty,
                          service.Submit(session, "sales", text));
  ZV_ASSERT_OK(texty.Wait());
  EXPECT_EQ(typed.fingerprint(), texty.fingerprint())
      << "builder-built and parsed-text queries must share one fingerprint";
  EXPECT_EQ(texty.stats().cache_hits, 1u)
      << "the text twin of a typed query must be a ResultCache hit";
  EXPECT_EQ(Canon(*texty.result()), Canon(*typed.result()));

  // The canonical serialization itself is a third spelling of the same key.
  ZV_ASSERT_OK_AND_ASSIGN(
      QueryHandle canonical,
      service.Submit(session, "sales", zql::CanonicalText(built)));
  ZV_ASSERT_OK(canonical.Wait());
  EXPECT_EQ(canonical.fingerprint(), typed.fingerprint());
  EXPECT_EQ(canonical.stats().cache_hits, 1u);
}

TEST(QueryServiceTest, ParseErrorsResolveOnTheHandleWithDiagnostics) {
  QueryService service;
  ZV_ASSERT_OK(service.RegisterDataset(zv::testing::MakeTinySales()));
  ZV_ASSERT_OK_AND_ASSIGN(SessionId session, service.CreateSession());

  ZV_ASSERT_OK_AND_ASSIGN(
      QueryHandle handle,
      service.Submit(session, "sales", "*f1 | 'year' | ??? | | | |"));
  const Status status = handle.Wait();
  EXPECT_EQ(status.code(), StatusCode::kParseError);
  EXPECT_NE(status.message().find("line 1"), std::string::npos)
      << status.message();
  EXPECT_NE(status.message().find("'?\?\?'"), std::string::npos)
      << status.message();
  EXPECT_EQ(handle.result(), nullptr);
  EXPECT_EQ(service.stats().failed, 1u);

  // Session and dataset validation still happens at Submit, even for
  // unparseable text.
  auto bad_session =
      service.Submit(SessionId{424242}, "sales", "*f1 | ??? |");
  EXPECT_EQ(bad_session.status().code(), StatusCode::kNotFound);
  auto bad_dataset = service.Submit(session, "nope", "*f1 | ??? |");
  EXPECT_EQ(bad_dataset.status().code(), StatusCode::kNotFound);

  // The service stays healthy.
  ZV_ASSERT_OK_AND_ASSIGN(
      QueryHandle ok,
      service.Submit(session, "sales", "*f1 | 'year' | 'sales' | | | |"));
  ZV_ASSERT_OK(ok.Wait());
}

TEST(QueryServiceTest, UserInputChangesFingerprintNotStaleServed) {
  QueryService service;
  ZV_ASSERT_OK(service.RegisterDataset(zv::testing::MakeTinySales()));
  ZV_ASSERT_OK_AND_ASSIGN(SessionId session, service.CreateSession());
  // The output component iterates v2, so the emitted visualization IS the
  // sketch's nearest neighbour — serving a stale entry would visibly
  // return the wrong product.
  const std::string q =
      "-f1 | 'year' | 'sales' | | | |\n"
      "f2 | 'year' | 'sales' | v1 <- 'product'.* | | | v2 <- "
      "argmin_v1[k=1] D(f2, f1)\n"
      "*f3 | 'year' | 'sales' | v2 | | |";
  Visualization rising;
  rising.x_attr = "year";
  rising.y_attr = "sales";
  rising.xs = {Value::Int(2014), Value::Int(2015), Value::Int(2016)};
  rising.series = {{"sales", {1.0, 2.0, 3.0}}};
  Visualization falling = rising;
  falling.series = {{"sales", {3.0, 2.0, 1.0}}};

  ZV_ASSERT_OK(service.SetUserInput(session, "f1", rising));
  ZV_ASSERT_OK_AND_ASSIGN(QueryHandle h1, service.Submit(session, "sales", q));
  ZV_ASSERT_OK(h1.Wait());

  // A different sketch must not be served the rising sketch's result.
  ZV_ASSERT_OK(service.SetUserInput(session, "f1", falling));
  ZV_ASSERT_OK_AND_ASSIGN(QueryHandle h2, service.Submit(session, "sales", q));
  ZV_ASSERT_OK(h2.Wait());
  EXPECT_EQ(h2.stats().cache_hits, 0u);
  EXPECT_NE(Canon(*h1.result()), Canon(*h2.result()));

  // Re-registering the first sketch hits its original entry again.
  ZV_ASSERT_OK(service.SetUserInput(session, "f1", rising));
  ZV_ASSERT_OK_AND_ASSIGN(QueryHandle h3, service.Submit(session, "sales", q));
  ZV_ASSERT_OK(h3.Wait());
  EXPECT_EQ(h3.stats().cache_hits, 1u);
  EXPECT_EQ(Canon(*h3.result()), Canon(*h1.result()));
}

TEST(QueryServiceTest, ContextCacheReusedWhenResultCacheDisabled) {
  ServiceOptions opts;
  opts.result_cache = false;  // force re-execution; isolate the ContextCache
  QueryService service(opts);
  ZV_ASSERT_OK(service.RegisterDataset(zv::testing::MakeTinySales()));
  ZV_ASSERT_OK_AND_ASSIGN(SessionId session, service.CreateSession());
  const std::string q =
      "f1 | 'year' | 'sales' | 'product'.'chair' | | |\n"
      "*f2 | 'year' | 'sales' | v1 <- 'product'.* | | | v2 <- "
      "argmin_v1[k=2] D(f2, f1)";

  ZV_ASSERT_OK_AND_ASSIGN(QueryHandle h1, service.Submit(session, "sales", q));
  ZV_ASSERT_OK(h1.Wait());
  EXPECT_EQ(h1.stats().contexts_reused, 0u);  // built fresh

  ZV_ASSERT_OK_AND_ASSIGN(QueryHandle h2, service.Submit(session, "sales", q));
  ZV_ASSERT_OK(h2.Wait());
  EXPECT_EQ(h2.stats().cache_hits, 0u);          // result cache off
  EXPECT_GE(h2.stats().contexts_reused, 1u);     // alignment reused
  EXPECT_EQ(Canon(*h1.result()), Canon(*h2.result()));  // bit-exact reuse
  EXPECT_GE(service.stats().contexts_reused, 1u);
}

TEST(ZqlExecutorTest, ScoringContextDedupedWithinOneQuery) {
  // Two Process declarations over the same (x, y, z, normalization)
  // candidate set build the alignment once — with no cross-query cache
  // wired at all.
  auto table = zv::testing::MakeTinySales();
  RoaringDatabase db;
  ZV_ASSERT_OK(db.RegisterTable(table));
  zql::ZqlExecutor exec(&db, "sales");
  ZV_ASSERT_OK_AND_ASSIGN(
      zql::ZqlResult r,
      exec.ExecuteText(
          "f1 | 'year' | 'profit' | 'product'.'desk' | | |\n"
          "*f2 | 'year' | 'profit' | v1 <- 'product'.* | | | (v2 <- "
          "argmin_v1[k=1] D(f2, f1)), (v3 <- argmax_v1[k=1] D(f2, f1))"));
  EXPECT_EQ(r.stats.contexts_reused, 1u)
      << "second Process declaration should reuse the first's context";
}

TEST(QueryServiceTest, EpochBumpInvalidatesCachedResults) {
  // Two "waves" tables with the same name and shape but different data.
  auto v1 = MakeWaves(6, 16, /*seed=*/5);
  auto v2 = MakeWaves(6, 16, /*seed=*/99);
  QueryService service;
  ZV_ASSERT_OK(service.RegisterDataset(v1));
  ZV_ASSERT_OK_AND_ASSIGN(SessionId session, service.CreateSession());
  const std::string q =
      "f1 | 't' | 'y' | 'sid'.'s0' | | |\n"
      "*f2 | 't' | 'y' | v1 <- 'sid'.* | | | v2 <- argmin_v1[k=3] "
      "D(f2, f1)";

  ZV_ASSERT_OK_AND_ASSIGN(QueryHandle before,
                          service.Submit(session, "waves", q));
  ZV_ASSERT_OK(before.Wait());
  ZV_ASSERT_OK_AND_ASSIGN(uint64_t epoch1, service.DatasetEpoch("waves"));
  EXPECT_EQ(epoch1, 1u);

  ZV_ASSERT_OK(service.ReplaceDataset(v2));
  ZV_ASSERT_OK_AND_ASSIGN(uint64_t epoch2, service.DatasetEpoch("waves"));
  EXPECT_EQ(epoch2, 2u);

  ZV_ASSERT_OK_AND_ASSIGN(QueryHandle after,
                          service.Submit(session, "waves", q));
  ZV_ASSERT_OK(after.Wait());
  EXPECT_EQ(after.stats().cache_hits, 0u) << "stale entry must not serve";
  EXPECT_NE(Canon(*before.result()), Canon(*after.result()))
      << "recomputed result should reflect the mutated table";

  // The old epoch's entry is unreachable but the new one caches normally.
  ZV_ASSERT_OK_AND_ASSIGN(QueryHandle again,
                          service.Submit(session, "waves", q));
  ZV_ASSERT_OK(again.Wait());
  EXPECT_EQ(again.stats().cache_hits, 1u);
  EXPECT_EQ(Canon(*again.result()), Canon(*after.result()));
}

// ---------------------------------------------------------------------------
// Cancellation
// ---------------------------------------------------------------------------

TEST(QueryServiceTest, CancelInflightDtwScanReturnsPromptly) {
  ScopedThreads threads(4);  // pooled scoring: chunk-boundary cancel checks
  QueryService service(DtwServiceOptions());
  // ~200^2 DTW pairs at width 192: tens of seconds if left alone.
  ZV_ASSERT_OK(service.RegisterDataset(MakeWaves(200, 192)));
  ZV_ASSERT_OK_AND_ASSIGN(SessionId session, service.CreateSession());

  ZV_ASSERT_OK_AND_ASSIGN(QueryHandle handle,
                          service.Submit(session, "waves", kAllPairsQuery));
  ASSERT_TRUE(WaitUntilInFlight(service)) << "query never started";
  std::this_thread::sleep_for(std::chrono::milliseconds(50));  // mid-scan
  ASSERT_FALSE(handle.done()) << "workload too small to test cancellation";

  const auto t0 = std::chrono::steady_clock::now();
  handle.Cancel();
  const Status status = handle.Wait();
  const double cancel_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_EQ(status.code(), StatusCode::kCancelled) << status.ToString();
  EXPECT_EQ(handle.result(), nullptr);
  EXPECT_LT(cancel_ms, 5000.0) << "cancellation latency far too high";
  EXPECT_GE(service.stats().cancelled, 1u);

  // The service is healthy: the worker is free and serves new queries.
  ZV_ASSERT_OK_AND_ASSIGN(
      QueryHandle small,
      service.Submit(session, "waves",
                     "*f1 | 't' | 'y' | 'sid'.'s0' | | |"));
  ZV_ASSERT_OK(small.Wait());
  ASSERT_NE(small.result(), nullptr);
  EXPECT_EQ(small.result()->outputs.size(), 1u);
}

TEST(QueryServiceTest, CancelQueuedQueryResolvesImmediately) {
  ServiceOptions opts = DtwServiceOptions();
  opts.max_inflight = 1;
  QueryService service(opts);
  ZV_ASSERT_OK(service.RegisterDataset(MakeWaves(200, 192)));
  ZV_ASSERT_OK_AND_ASSIGN(SessionId s1, service.CreateSession());
  ZV_ASSERT_OK_AND_ASSIGN(SessionId s2, service.CreateSession());

  ZV_ASSERT_OK_AND_ASSIGN(QueryHandle slow,
                          service.Submit(s1, "waves", kAllPairsQuery));
  ASSERT_TRUE(WaitUntilInFlight(service));
  ZV_ASSERT_OK_AND_ASSIGN(QueryHandle queued,
                          service.Submit(s2, "waves", kAllPairsQuery));

  // The queued query never started; Cancel resolves it without waiting
  // for the worker.
  queued.Cancel();
  EXPECT_EQ(queued.Wait().code(), StatusCode::kCancelled);

  slow.Cancel();
  EXPECT_EQ(slow.Wait().code(), StatusCode::kCancelled);
  EXPECT_GE(service.stats().cancelled, 1u);
}

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

TEST(QueryServiceTest, OverloadReturnsUnavailable) {
  ServiceOptions opts = DtwServiceOptions();
  opts.max_inflight = 1;
  opts.max_queue = 1;
  QueryService service(opts);
  ZV_ASSERT_OK(service.RegisterDataset(MakeWaves(200, 192)));
  ZV_ASSERT_OK_AND_ASSIGN(SessionId s1, service.CreateSession());
  ZV_ASSERT_OK_AND_ASSIGN(SessionId s2, service.CreateSession());
  ZV_ASSERT_OK_AND_ASSIGN(SessionId s3, service.CreateSession());

  ZV_ASSERT_OK_AND_ASSIGN(QueryHandle running,
                          service.Submit(s1, "waves", kAllPairsQuery));
  // Wait until it occupies the single worker (queue drained).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    const auto st = service.stats();
    if (st.in_flight == 1 && st.queued == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ZV_ASSERT_OK_AND_ASSIGN(QueryHandle waiting,
                          service.Submit(s2, "waves", kAllPairsQuery));

  // Queue slot taken: the third concurrent query is refused, not queued.
  auto rejected = service.Submit(s3, "waves", kAllPairsQuery);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable)
      << rejected.status().ToString();
  EXPECT_EQ(service.stats().rejected, 1u);

  // Cancelling the waiting query frees its admission slot *immediately* —
  // the single worker is still occupied by `running`, so no pop can have
  // cleaned it up; a new submission must be admitted right away.
  waiting.Cancel();
  EXPECT_EQ(waiting.Wait().code(), StatusCode::kCancelled);
  ZV_ASSERT_OK_AND_ASSIGN(QueryHandle readmitted,
                          service.Submit(s2, "waves", kAllPairsQuery));

  readmitted.Cancel();
  running.Cancel();
  EXPECT_EQ(readmitted.Wait().code(), StatusCode::kCancelled);
  EXPECT_EQ(running.Wait().code(), StatusCode::kCancelled);

  // Capacity freed: the same session is admitted again.
  ZV_ASSERT_OK_AND_ASSIGN(
      QueryHandle ok_now,
      service.Submit(s3, "waves", "*f1 | 't' | 'y' | 'sid'.'s0' | | |"));
  ZV_ASSERT_OK(ok_now.Wait());
}

// ---------------------------------------------------------------------------
// Sessions
// ---------------------------------------------------------------------------

TEST(QueryServiceTest, SessionsExpireByTtlOnTheInjectedClock) {
  ManualClock clock;
  ServiceOptions opts;
  opts.clock = &clock;
  opts.session_ttl_ms = 1000;
  QueryService service(opts);
  ZV_ASSERT_OK(service.RegisterDataset(zv::testing::MakeTinySales()));

  ZV_ASSERT_OK_AND_ASSIGN(SessionId idle, service.CreateSession());
  ZV_ASSERT_OK_AND_ASSIGN(SessionId active, service.CreateSession());
  EXPECT_EQ(service.ActiveSessions(), 2u);

  clock.Advance(800);  // refresh `active` only
  ZV_ASSERT_OK_AND_ASSIGN(
      QueryHandle h,
      service.Submit(active, "sales", "*f1 | 'year' | 'sales' | | | |"));
  ZV_ASSERT_OK(h.Wait());

  clock.Advance(800);  // idle: 1600ms > ttl; active: 800ms
  EXPECT_EQ(service.ActiveSessions(), 1u);
  const auto expired =
      service.Submit(idle, "sales", "*f1 | 'year' | 'sales' | | | |");
  ASSERT_FALSE(expired.ok());
  EXPECT_EQ(expired.status().code(), StatusCode::kNotFound);
  // The surviving session still works.
  ZV_ASSERT_OK_AND_ASSIGN(
      QueryHandle h2,
      service.Submit(active, "sales", "*f1 | 'year' | 'sales' | | | |"));
  ZV_ASSERT_OK(h2.Wait());
}

TEST(QueryServiceTest, PerSessionQueriesExecuteInFifoOrder) {
  ServiceOptions opts = DtwServiceOptions();
  opts.max_inflight = 4;  // capacity to run them concurrently — if allowed
  QueryService service(opts);
  ZV_ASSERT_OK(service.RegisterDataset(MakeWaves(140, 160)));
  ZV_ASSERT_OK_AND_ASSIGN(SessionId session, service.CreateSession());
  ZV_ASSERT_OK_AND_ASSIGN(SessionId other, service.CreateSession());

  ZV_ASSERT_OK_AND_ASSIGN(QueryHandle slow,
                          service.Submit(session, "waves", kAllPairsQuery));
  ZV_ASSERT_OK_AND_ASSIGN(
      QueryHandle fast,
      service.Submit(session, "waves", "*f1 | 't' | 'y' | 'sid'.'s1' | | |"));
  ZV_ASSERT_OK_AND_ASSIGN(
      QueryHandle cross,
      service.Submit(other, "waves", "*f1 | 't' | 'y' | 'sid'.'s2' | | |"));

  // A different session's query overtakes (no global serialization)…
  ZV_ASSERT_OK(cross.Wait());
  EXPECT_FALSE(slow.done())
      << "the slow query should still be running (workload too small?)";
  // …but the same session's fast query must wait for the slow one.
  EXPECT_FALSE(fast.done());
  ZV_ASSERT_OK(fast.Wait());
  EXPECT_TRUE(slow.done()) << "per-session FIFO violated";
  ZV_ASSERT_OK(slow.Wait());
}

TEST(QueryServiceTest, ShutdownResolvesOutstandingHandles) {
  QueryHandle running, queued;
  {
    ServiceOptions opts = DtwServiceOptions();
    opts.max_inflight = 1;
    QueryService service(opts);
    ZV_ASSERT_OK(service.RegisterDataset(MakeWaves(200, 192)));
    ZV_ASSERT_OK_AND_ASSIGN(SessionId s1, service.CreateSession());
    ZV_ASSERT_OK_AND_ASSIGN(SessionId s2, service.CreateSession());
    ZV_ASSERT_OK_AND_ASSIGN(running,
                            service.Submit(s1, "waves", kAllPairsQuery));
    ASSERT_TRUE(WaitUntilInFlight(service));
    ZV_ASSERT_OK_AND_ASSIGN(queued,
                            service.Submit(s2, "waves", kAllPairsQuery));
  }  // destructor: drains queues, cancels the in-flight scan, joins
  EXPECT_TRUE(running.done());
  EXPECT_TRUE(queued.done());
  EXPECT_EQ(running.Wait().code(), StatusCode::kCancelled);
  EXPECT_EQ(queued.Wait().code(), StatusCode::kCancelled);
}

TEST(QueryServiceTest, EndSessionCancelsItsOutstandingWork) {
  ServiceOptions opts = DtwServiceOptions();
  opts.max_inflight = 1;
  QueryService service(opts);
  ZV_ASSERT_OK(service.RegisterDataset(MakeWaves(200, 192)));
  ZV_ASSERT_OK_AND_ASSIGN(SessionId session, service.CreateSession());
  ZV_ASSERT_OK_AND_ASSIGN(QueryHandle running,
                          service.Submit(session, "waves", kAllPairsQuery));
  ASSERT_TRUE(WaitUntilInFlight(service));
  ZV_ASSERT_OK_AND_ASSIGN(QueryHandle follow_up,
                          service.Submit(session, "waves", kAllPairsQuery));

  ZV_ASSERT_OK(service.EndSession(session));
  EXPECT_EQ(follow_up.Wait().code(), StatusCode::kCancelled);
  EXPECT_EQ(running.Wait().code(), StatusCode::kCancelled);
  const auto resubmit =
      service.Submit(session, "waves", "*f1 | 't' | 'y' | 'sid'.'s0' | | |");
  EXPECT_EQ(resubmit.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace zv
