#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "viz/binning.h"
#include "viz/vega_emitter.h"
#include "viz/visualization.h"
#include "viz/viz_spec.h"

namespace zv {
namespace {

// --- VizSpec parsing ----------------------------------------------------------

TEST(VizSpecTest, ParseFull) {
  ZV_ASSERT_OK_AND_ASSIGN(VizSpec s,
                          ParseVizSpec("bar.(x=bin(20), y=agg('sum'))"));
  EXPECT_EQ(s.chart, ChartType::kBar);
  EXPECT_DOUBLE_EQ(s.x_bin, 20);
  EXPECT_EQ(s.y_agg, sql::AggFunc::kSum);
}

TEST(VizSpecTest, ParseBareType) {
  ZV_ASSERT_OK_AND_ASSIGN(VizSpec s, ParseVizSpec("scatterplot"));
  EXPECT_EQ(s.chart, ChartType::kScatter);
  EXPECT_EQ(s.y_agg, sql::AggFunc::kNone);
}

TEST(VizSpecTest, ParseEmpty) {
  ZV_ASSERT_OK_AND_ASSIGN(VizSpec s, ParseVizSpec("  "));
  EXPECT_EQ(s.chart, ChartType::kAuto);
}

TEST(VizSpecTest, AggVariants) {
  for (const auto& [name, agg] :
       std::vector<std::pair<std::string, sql::AggFunc>>{
           {"sum", sql::AggFunc::kSum},
           {"avg", sql::AggFunc::kAvg},
           {"count", sql::AggFunc::kCount},
           {"min", sql::AggFunc::kMin},
           {"max", sql::AggFunc::kMax}}) {
    ZV_ASSERT_OK_AND_ASSIGN(VizSpec s,
                            ParseVizSpec("bar.(y=agg('" + name + "'))"));
    EXPECT_EQ(s.y_agg, agg) << name;
  }
}

TEST(VizSpecTest, Errors) {
  EXPECT_FALSE(ParseVizSpec("piechart").ok());
  EXPECT_FALSE(ParseVizSpec("bar.(x=bin(-5))").ok());
  EXPECT_FALSE(ParseVizSpec("bar.(y=mean('sum'))").ok());
  EXPECT_FALSE(ParseVizSpec("bar.(w=3)").ok());
}

TEST(VizSpecTest, ToStringRoundTrip) {
  ZV_ASSERT_OK_AND_ASSIGN(VizSpec s,
                          ParseVizSpec("bar.(x=bin(20), y=agg('sum'))"));
  ZV_ASSERT_OK_AND_ASSIGN(VizSpec back, ParseVizSpec(s.ToString()));
  EXPECT_EQ(s, back);
}

TEST(VizSpecTest, DefaultRules) {
  // Categorical x, measure y -> bar + SUM (Polaris/Mackinlay default).
  VizSpec a = DefaultVizSpec(ColumnType::kCategorical, ColumnType::kDouble);
  EXPECT_EQ(a.chart, ChartType::kBar);
  EXPECT_EQ(a.y_agg, sql::AggFunc::kSum);
  // Measure x, measure y -> scatter, raw.
  VizSpec b = DefaultVizSpec(ColumnType::kDouble, ColumnType::kDouble);
  EXPECT_EQ(b.chart, ChartType::kScatter);
  EXPECT_EQ(b.y_agg, sql::AggFunc::kNone);
}

// --- Visualization --------------------------------------------------------------

Visualization MakeViz(std::vector<double> ys) {
  Visualization v;
  v.x_attr = "year";
  v.y_attr = "sales";
  for (size_t i = 0; i < ys.size(); ++i) {
    v.xs.push_back(Value::Int(static_cast<int64_t>(2000 + i)));
  }
  v.series = {{"sales", std::move(ys)}};
  return v;
}

TEST(VisualizationTest, SameSourceIgnoresData) {
  Visualization a = MakeViz({1, 2, 3});
  Visualization b = MakeViz({9, 9, 9});
  EXPECT_TRUE(a.SameSourceAs(b));
  b.slices.push_back({"product", Value::Str("chair")});
  EXPECT_FALSE(a.SameSourceAs(b));
}

TEST(VisualizationTest, FlatValuesConcatenatesSeries) {
  Visualization v = MakeViz({1, 2});
  v.series.push_back({"profit", {3, 4}});
  EXPECT_EQ(v.FlatValues(), (std::vector<double>{1, 2, 3, 4}));
}

TEST(VisualizationTest, LabelMentionsSlices) {
  Visualization v = MakeViz({1});
  v.slices.push_back({"product", Value::Str("chair")});
  EXPECT_EQ(v.Label(), "sales vs year | product=chair");
}

TEST(AlignToMatrixTest, UnionOfXsZeroFilled) {
  Visualization a = MakeViz({1, 2, 3});  // 2000..2002
  Visualization b = MakeViz({5, 6});     // 2000..2001
  b.xs = {Value::Int(2001), Value::Int(2002)};
  auto m = AlignToMatrix({&a, &b});
  ASSERT_EQ(m.size(), 2u);
  EXPECT_EQ(m[0], (std::vector<double>{1, 2, 3}));
  EXPECT_EQ(m[1], (std::vector<double>{0, 5, 6}));
}

TEST(AlignToMatrixTest, MultiSeriesWidth) {
  Visualization a = MakeViz({1, 2});
  a.series.push_back({"profit", {7, 8}});
  Visualization b = MakeViz({3, 4});
  auto m = AlignToMatrix({&a, &b});
  EXPECT_EQ(m[0], (std::vector<double>{1, 2, 7, 8}));
  EXPECT_EQ(m[1], (std::vector<double>{3, 4, 0, 0}));
}

// --- binning -----------------------------------------------------------------------

TEST(BinningTest, SumsIntoBins) {
  Visualization v;
  v.x_attr = "weight";
  v.y_attr = "sales";
  v.spec.x_bin = 10;
  v.spec.y_agg = sql::AggFunc::kSum;
  v.xs = {Value::Double(1), Value::Double(5), Value::Double(12),
          Value::Double(19), Value::Double(25)};
  v.series = {{"sales", {1, 2, 3, 4, 5}}};
  Visualization binned = BinVisualization(v);
  ASSERT_EQ(binned.xs.size(), 3u);
  EXPECT_EQ(binned.xs[0], Value::Double(0));
  EXPECT_EQ(binned.ys(), (std::vector<double>{3, 7, 5}));
}

TEST(BinningTest, AvgAndCount) {
  Visualization v;
  v.spec.x_bin = 10;
  v.xs = {Value::Double(1), Value::Double(2)};
  v.series = {{"y", {4, 6}}};
  v.spec.y_agg = sql::AggFunc::kAvg;
  EXPECT_EQ(BinVisualization(v).ys(), std::vector<double>{5});
  v.spec.y_agg = sql::AggFunc::kCount;
  EXPECT_EQ(BinVisualization(v).ys(), std::vector<double>{2});
}

TEST(BinningTest, NoBinIsIdentity) {
  Visualization v = MakeViz({1, 2, 3});
  Visualization out = BinVisualization(v);
  EXPECT_EQ(out.ys(), v.ys());
}

TEST(BinningTest, NegativeXsFloorCorrectly) {
  Visualization v;
  v.spec.x_bin = 10;
  v.spec.y_agg = sql::AggFunc::kSum;
  v.xs = {Value::Double(-5), Value::Double(-15)};
  v.series = {{"y", {1, 2}}};
  Visualization out = BinVisualization(v);
  ASSERT_EQ(out.xs.size(), 2u);
  EXPECT_EQ(out.xs[0], Value::Double(-20));
  EXPECT_EQ(out.xs[1], Value::Double(-10));
}

// --- vega emitter ---------------------------------------------------------------------

TEST(VegaEmitterTest, EmitsValidShape) {
  Visualization v = MakeViz({1, 2});
  v.spec.chart = ChartType::kBar;
  const std::string json = ToVegaLiteJson(v);
  EXPECT_NE(json.find("\"mark\": \"bar\""), std::string::npos);
  EXPECT_NE(json.find("\"field\": \"year\""), std::string::npos);
  EXPECT_NE(json.find("vega-lite/v5.json"), std::string::npos);
  // Balanced braces.
  int depth = 0;
  for (char c : json) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(VegaEmitterTest, MultiSeriesGetsColorEncoding) {
  Visualization v = MakeViz({1, 2});
  v.series.push_back({"profit", {3, 4}});
  const std::string json = ToVegaLiteJson(v);
  EXPECT_NE(json.find("\"color\""), std::string::npos);
  EXPECT_NE(json.find("\"series\": \"profit\""), std::string::npos);
}

TEST(VegaEmitterTest, EscapesQuotes) {
  Visualization v = MakeViz({1});
  v.x_attr = "we\"ird";
  const std::string json = ToVegaLiteJson(v);
  EXPECT_NE(json.find("we\\\"ird"), std::string::npos);
}

TEST(AsciiChartTest, RendersBars) {
  Visualization v = MakeViz({1, 5, 3});
  v.spec.chart = ChartType::kBar;
  const std::string chart = ToAsciiChart(v, 10, 5);
  EXPECT_NE(chart.find('#'), std::string::npos);
  EXPECT_NE(chart.find("3 points"), std::string::npos);
}

TEST(AsciiChartTest, HandlesEmpty) {
  Visualization v;
  v.x_attr = "x";
  v.y_attr = "y";
  EXPECT_NE(ToAsciiChart(v).find("no data"), std::string::npos);
}

}  // namespace
}  // namespace zv
