/// \file plan_test.cc
/// \brief Physical-plan layer tests: golden EXPLAIN operator trees, stage
/// structure, wavefront equivalence with the dependency analyzer, and
/// plan-build failure on unresolvable dependencies.

#include <gtest/gtest.h>

#include <set>

#include "tasks/simd.h"
#include "tests/test_util.h"
#include "zql/explain.h"
#include "zql/parser.h"
#include "zql/plan.h"

namespace zv::zql {
namespace {

/// The ScoreOp note names the dispatched distance-kernel tier, which
/// depends on the machine (and ZV_SIMD) — golden trees splice in whatever
/// this process resolved so they hold on any hardware.
std::string KernelNote() {
  return std::string(", kernel=") + simd::LevelName(simd::ActiveLevel());
}

// Table 5.2: most-different sales-over-location between 2010 and 2015.
const char* const kTable5_2 =
    "f1 | 'country' | 'sales' | v1 <- P | year=2010 | bar.(y=agg('sum')) |\n"
    "f2 | 'country' | 'sales' | v1 | year=2015 | bar.(y=agg('sum')) | v2 "
    "<- argmax_v1[k=10] D(f1, f2)\n"
    "*f3 | 'country' | 'profit' | v2 | year=2010 | bar.(y=agg('sum')) |\n"
    "*f4 | 'country' | 'profit' | v2 | year=2015 | bar.(y=agg('sum')) |";

TEST(PlanTest, GoldenInterTaskOperatorTree) {
  ZV_ASSERT_OK_AND_ASSIGN(ZqlQuery q, ParseQuery(kTable5_2));
  ZqlOptions opts;  // Inter-Task, pipelined — the defaults
  ZV_ASSERT_OK_AND_ASSIGN(PhysicalPlan plan, BuildPhysicalPlan(q, opts));
  EXPECT_EQ(plan.Render(q),
            "physical plan: opt=Inter-Task, pipelined (fetch/score overlap), "
            "2 stages\n"
            "stage 0:\n"
            "  FetchOp        f1  [batched scan]\n"
            "  FetchOp        f2  [batched scan]\n"
            "  MaterializeOp  f1\n"
            "  MaterializeOp  f2\n"
            "  ScoreOp        f2: v2 <- argmax_v1[k=10] D(f1, f2)  "
            "[D: ScoringContext batch scan" + KernelNote() +
            ", context-cacheable]\n"
            "  ReduceOp       f2 -> {v2}\n"
            "stage 1:\n"
            "  FetchOp        *f3  [batched scan]\n"
            "  FetchOp        *f4  [batched scan]\n"
            "  MaterializeOp  *f3\n"
            "  MaterializeOp  *f4\n"
            "OutputOp       *f3, *f4\n");
}

TEST(PlanTest, GoldenUserInputAndDerivedTree) {
  ZV_ASSERT_OK_AND_ASSIGN(
      ZqlQuery q,
      ParseQuery("-q | | | | | |\n"
                 "f1 | 'year' | 'sales' | v1 <- 'product'.* | | | o1 <- "
                 "argmin_v1[k=2] D(f1, q)\n"
                 "*f2=f1.order | 'year' | 'sales' | o1 -> | | |"));
  ZqlOptions opts;
  opts.pipelined_execution = false;  // header reflects the schedule
  ZV_ASSERT_OK_AND_ASSIGN(PhysicalPlan plan, BuildPhysicalPlan(q, opts));
  EXPECT_EQ(plan.Render(q),
            "physical plan: opt=Inter-Task, staged, 1 stage\n"
            "stage 0:\n"
            "  FetchOp        f1  [batched scan]\n"
            "  MaterializeOp  -q  [user input]\n"
            "  MaterializeOp  f1\n"
            "  ScoreOp        f1: o1 <- argmin_v1[k=2] D(f1, q)  "
            "[D: ScoringContext batch scan, top-k pruned k=2" + KernelNote() +
            ", context-cacheable]\n"
            "  ReduceOp       f1 -> {o1}\n"
            "  MaterializeOp  *f2=f1.order  [derived]\n"
            "OutputOp       *f2\n");
}

/// The sequential levels break batches differently: NoOpt flushes (and
/// scans per visualization) after every row, so each row is its own stage.
TEST(PlanTest, NoOptOneStagePerRow) {
  ZV_ASSERT_OK_AND_ASSIGN(ZqlQuery q, ParseQuery(kTable5_2));
  ZqlOptions opts;
  opts.optimization = OptLevel::kNoOpt;
  ZV_ASSERT_OK_AND_ASSIGN(PhysicalPlan plan, BuildPhysicalPlan(q, opts));
  EXPECT_EQ(plan.num_stages, 4);
  const std::string rendered = plan.Render(q);
  EXPECT_NE(rendered.find("[one scan per viz]"), std::string::npos);
  EXPECT_NE(rendered.find("stage 3:"), std::string::npos);
}

/// Intra-Task batches the fetches of consecutive task-less rows with the
/// next task row into one stage: f3 and f4 (task-less tail) share a stage.
TEST(PlanTest, IntraTaskBatchesTaskLessRuns) {
  ZV_ASSERT_OK_AND_ASSIGN(ZqlQuery q, ParseQuery(kTable5_2));
  ZqlOptions opts;
  opts.optimization = OptLevel::kIntraTask;
  ZV_ASSERT_OK_AND_ASSIGN(PhysicalPlan plan, BuildPhysicalPlan(q, opts));
  EXPECT_EQ(plan.num_stages, 2);
}

/// The plan's wavefront must agree with the pure dependency analyzer
/// (zql/explain.h) — they implement the same Figure-5.1 schedule.
TEST(PlanTest, WavesMatchExplainAnalysis) {
  ZV_ASSERT_OK_AND_ASSIGN(
      ZqlQuery q,
      ParseQuery(
          "f1 | 'year' | 'sales' | v1 <- 'product'.* | location='US' | | v2 "
          "<- argany_v1[t > 0] T(f1)\n"
          "f2 | 'year' | 'sales' | v1 | location='UK' | | v3 <- "
          "argany_v1[t < 0] T(f2)\n"
          "*f3 | 'year' | 'profit' | v4 <- (v2.range | v3.range) | | |"));
  ZqlOptions opts;
  ZV_ASSERT_OK_AND_ASSIGN(PhysicalPlan plan, BuildPhysicalPlan(q, opts));
  ZV_ASSERT_OK_AND_ASSIGN(QueryPlan analyzed, ExplainQuery(q));
  ASSERT_EQ(plan.wave_of_row.size(), analyzed.rows.size());
  for (size_t i = 0; i < analyzed.rows.size(); ++i) {
    EXPECT_EQ(plan.wave_of_row[i], analyzed.rows[i].wave) << "row " << i;
  }
}

/// Step-structure invariants the scheduler relies on: every fetch row's
/// MaterializeOp comes after its FetchOp, ScoreOp/ReduceOp pairs are
/// adjacent, and the plan ends with OutputOp.
TEST(PlanTest, StepStructureInvariants) {
  ZV_ASSERT_OK_AND_ASSIGN(ZqlQuery q, ParseQuery(kTable5_2));
  for (OptLevel level : {OptLevel::kNoOpt, OptLevel::kIntraLine,
                         OptLevel::kIntraTask, OptLevel::kInterTask}) {
    ZqlOptions opts;
    opts.optimization = level;
    ZV_ASSERT_OK_AND_ASSIGN(PhysicalPlan plan, BuildPhysicalPlan(q, opts));
    ASSERT_FALSE(plan.steps.empty());
    EXPECT_EQ(plan.steps.back().kind, PlanStep::Kind::kOutput);
    std::set<int> fetched, materialized;
    for (size_t i = 0; i < plan.steps.size(); ++i) {
      const PlanStep& step = plan.steps[i];
      switch (step.kind) {
        case PlanStep::Kind::kFetch:
          EXPECT_FALSE(materialized.count(step.row));
          fetched.insert(step.row);
          break;
        case PlanStep::Kind::kMaterialize:
          materialized.insert(step.row);
          break;
        case PlanStep::Kind::kScore:
          // The row must be materialized, and the matching ReduceOp must
          // immediately follow (ScoreResult hand-off is single-slot).
          EXPECT_TRUE(materialized.count(step.row));
          ASSERT_LT(i + 1, plan.steps.size());
          EXPECT_EQ(plan.steps[i + 1].kind, PlanStep::Kind::kReduce);
          EXPECT_EQ(plan.steps[i + 1].row, step.row);
          EXPECT_EQ(plan.steps[i + 1].decl, step.decl);
          break;
        default:
          break;
      }
    }
    // Every row is materialized exactly once; every fetch row was planned.
    EXPECT_EQ(materialized.size(), q.rows.size());
    EXPECT_EQ(fetched.size(), q.rows.size());  // no local rows in 5.2
  }
}

TEST(PlanTest, UnresolvableDependenciesFailAtBuild) {
  ZV_ASSERT_OK_AND_ASSIGN(
      ZqlQuery q,
      ParseQuery("*f1 | 'year' | 'sales' | v9 | | |"));  // v9 never declared
  ZqlOptions opts;
  const auto plan = BuildPhysicalPlan(q, opts);
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(plan.status().ToString().find("unresolvable"), std::string::npos);
}

}  // namespace
}  // namespace zv::zql
