/// \file topk_test.cc
/// \brief The top-k pruned scoring contract: bounded kernels are
/// bit-identical to the unbounded ones whenever they complete (and always
/// at bound = +inf), and every pruned selection path — TopKCollector,
/// ApplyMechanism's heap select, the ScoringContext scan, the ZQL
/// argmin[k=n] path, RecommendSimilar — returns byte-identical results to
/// the full-scan stable argsort, at every tested k and thread count.

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "engine/scan_db.h"
#include "tasks/distance.h"
#include "tasks/primitives.h"
#include "tasks/recommender.h"
#include "tasks/series_cache.h"
#include "tasks/topk.h"
#include "tests/test_util.h"
#include "zql/executor.h"

namespace zv {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Reference selection: the first k of a stable argsort — the definition
/// every top-k path must reproduce byte-for-byte.
std::vector<size_t> StableArgsortPrefix(const std::vector<double>& scores,
                                        size_t k, TopKOrder order) {
  std::vector<size_t> idx(scores.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::stable_sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
    return order == TopKOrder::kAscending ? scores[a] < scores[b]
                                          : scores[a] > scores[b];
  });
  idx.resize(std::min(k, idx.size()));
  return idx;
}

std::vector<double> RandomScores(size_t n, uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> dist(0, 20);  // coarse => many ties
  std::vector<double> out(n);
  for (double& s : out) s = dist(rng) * 0.25;
  return out;
}

TEST(TopKCollectorTest, MatchesStableArgsortPrefix) {
  for (const TopKOrder order :
       {TopKOrder::kAscending, TopKOrder::kDescending}) {
    for (const size_t n : {size_t{1}, size_t{7}, size_t{100}}) {
      const std::vector<double> scores = RandomScores(n, 17 + n);
      for (const size_t k : {size_t{0}, size_t{1}, n / 2, n, n + 5}) {
        TopKCollector topk(k, order);
        for (size_t i = 0; i < n; ++i) topk.Offer(scores[i], i);
        EXPECT_EQ(topk.SortedIndices(),
                  StableArgsortPrefix(scores, k, order))
            << "n=" << n << " k=" << k;
        EXPECT_EQ(TopKIndices(scores, k, order),
                  StableArgsortPrefix(scores, k, order));
      }
    }
  }
}

TEST(TopKCollectorTest, BoundIsWorstKeptScore) {
  TopKCollector topk(2, TopKOrder::kAscending);
  EXPECT_EQ(topk.Bound(), kInf);
  topk.Offer(5.0, 0);
  EXPECT_EQ(topk.Bound(), kInf);  // not full yet: no pruning allowed
  topk.Offer(3.0, 1);
  EXPECT_EQ(topk.Bound(), 5.0);
  topk.Offer(1.0, 2);  // evicts 5.0
  EXPECT_EQ(topk.Bound(), 3.0);
  topk.Offer(9.0, 3);  // rejected
  EXPECT_EQ(topk.Bound(), 3.0);
}

TEST(SharedTopKTest, KZeroIsSafeAndKeepsNothing) {
  SharedTopK topk(0, TopKOrder::kAscending);  // must not touch an empty heap
  EXPECT_EQ(topk.bound(), kInf);              // and must never prune
  topk.Offer(1.0, 0);
  EXPECT_TRUE(topk.SortedIndices().empty());
  EXPECT_EQ(topk.bound(), kInf);
}

TEST(SharedTopKTest, OfferUnderParallelForIsDeterministic) {
  const std::vector<double> scores = RandomScores(500, 99);
  const std::vector<size_t> want =
      StableArgsortPrefix(scores, 7, TopKOrder::kAscending);
  for (const size_t threads : {size_t{1}, size_t{4}}) {
    SetParallelThreads(threads);
    SharedTopK topk(7, TopKOrder::kAscending);
    ParallelFor(scores.size(),
                [&](size_t i) { topk.Offer(scores[i], i); });
    EXPECT_EQ(topk.SortedIndices(), want) << "threads=" << threads;
  }
  SetParallelThreads(0);
}

// ---------------------------------------------------------------------------
// Bounded kernels
// ---------------------------------------------------------------------------

std::vector<double> RandomSeries(size_t n, uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-3.0, 3.0);
  std::vector<double> out(n);
  for (double& v : out) v = dist(rng);
  return out;
}

TEST(BoundedKernelTest, EuclideanEqualsUnboundedAtInfinity) {
  // Lengths straddling the unroll width and the check stride.
  for (const size_t n : {size_t{0}, size_t{1}, size_t{3}, size_t{4},
                         size_t{31}, size_t{32}, size_t{33}, size_t{100},
                         size_t{257}}) {
    const std::vector<double> a = RandomSeries(n, 1 + n);
    const std::vector<double> b = RandomSeries(n, 1000 + n);
    const double exact = EuclideanSpan(a.data(), b.data(), n);
    // Bit-exact at +inf and at any bound the distance does not exceed.
    EXPECT_EQ(EuclideanSpanBounded(a.data(), b.data(), n, kInf), exact);
    EXPECT_EQ(EuclideanSpanBounded(a.data(), b.data(), n, exact), exact);
    EXPECT_EQ(EuclideanSpanBounded(a.data(), b.data(), n, exact + 1), exact);
    // A bound clearly below the distance terminates early with +inf.
    if (exact > 1e-9 && n >= 64) {
      EXPECT_EQ(EuclideanSpanBounded(a.data(), b.data(), n, exact / 4), kInf);
    }
  }
}

TEST(BoundedKernelTest, DtwEqualsUnboundedAtInfinity) {
  for (const size_t n : {size_t{0}, size_t{1}, size_t{5}, size_t{40}}) {
    const std::vector<double> a = RandomSeries(n, 7 + n);
    const std::vector<double> b = RandomSeries(n + 3, 70 + n);
    const double exact = DtwSpan(a.data(), n, b.data(), b.size());
    EXPECT_EQ(DtwSpanBounded(a.data(), n, b.data(), b.size(), kInf), exact);
    EXPECT_EQ(DtwSpanBounded(a.data(), n, b.data(), b.size(), exact), exact);
    if (exact > 1e-9 && n >= 40) {
      EXPECT_EQ(DtwSpanBounded(a.data(), n, b.data(), b.size(), exact / 8),
                kInf);
    }
  }
}

TEST(BoundedKernelTest, SpanDistanceBoundedCoversEveryMetric) {
  const size_t n = 80;
  const std::vector<double> a = RandomSeries(n, 3);
  const std::vector<double> b = RandomSeries(n, 4);
  for (const DistanceMetric m :
       {DistanceMetric::kEuclidean, DistanceMetric::kDtw,
        DistanceMetric::kKlDivergence, DistanceMetric::kEmd}) {
    EXPECT_EQ(SpanDistanceBounded(a.data(), b.data(), n, m, kInf),
              SpanDistance(a.data(), b.data(), n, m));
  }
}

// ---------------------------------------------------------------------------
// ApplyMechanism heap select
// ---------------------------------------------------------------------------

TEST(ApplyMechanismTest, KLimitHeapPathMatchesStableSort) {
  const std::vector<double> scores = RandomScores(200, 5);
  for (const auto mech : {Mechanism::kArgMin, Mechanism::kArgMax}) {
    const TopKOrder order = mech == Mechanism::kArgMin
                                ? TopKOrder::kAscending
                                : TopKOrder::kDescending;
    for (const int64_t k : {int64_t{1}, int64_t{100}, int64_t{200},
                            int64_t{500}}) {
      MechanismFilter filter;
      filter.k = k;
      EXPECT_EQ(
          ApplyMechanism(mech, scores, filter),
          StableArgsortPrefix(scores, static_cast<size_t>(k), order))
          << "k=" << k;
    }
  }
}

// ---------------------------------------------------------------------------
// ScoringContext pruned scan
// ---------------------------------------------------------------------------

/// Candidates over a shared x domain, with every third one missing a point
/// so both the cached fast path and the pairwise-restriction slow path get
/// exercised by the pruned scan.
std::vector<Visualization> MakeCandidates(size_t n, size_t points) {
  std::vector<Visualization> out;
  out.reserve(n);
  for (size_t c = 0; c < n; ++c) {
    Visualization v;
    v.x_attr = "t";
    v.y_attr = "y";
    Series s;
    s.name = "y";
    for (size_t i = 0; i < points; ++i) {
      if (c % 3 == 2 && i == points / 2) continue;  // partial coverage
      v.xs.push_back(Value::Int(static_cast<int64_t>(i)));
      s.ys.push_back(std::sin(0.37 * static_cast<double>(c) +
                              0.21 * static_cast<double>(i)) +
                     0.03 * static_cast<double>(c % 13) *
                         static_cast<double>(i));
    }
    v.series.push_back(std::move(s));
    out.push_back(std::move(v));
  }
  return out;
}

TEST(PrunedScanTest, ByteIdenticalToFullScanAtEveryKAndThreadCount) {
  const size_t n = 120;
  const std::vector<Visualization> candidates = MakeCandidates(n, 48);
  std::vector<const Visualization*> set;
  for (const auto& v : candidates) set.push_back(&v);
  for (const DistanceMetric metric :
       {DistanceMetric::kEuclidean, DistanceMetric::kDtw}) {
    const ScoringContext ctx(set, Normalization::kZScore,
                             Alignment::kZeroFill);
    // Full scan: every exact distance to candidate 0, stable argsort.
    std::vector<double> scores(n);
    for (size_t i = 0; i < n; ++i) {
      scores[i] = ctx.PairDistance(0, i, metric);
    }
    for (const size_t k : {size_t{1}, n / 2, n}) {
      const std::vector<size_t> want =
          StableArgsortPrefix(scores, k, TopKOrder::kAscending);
      for (const size_t threads : {size_t{1}, size_t{4}}) {
        SetParallelThreads(threads);
        SharedTopK topk(k, TopKOrder::kAscending);
        ParallelFor(n, [&](size_t i) {
          const double d =
              ctx.PairDistanceBounded(0, i, metric, topk.bound());
          if (!std::isinf(d)) topk.Offer(d, i);
        });
        EXPECT_EQ(topk.SortedIndices(), want)
            << "metric=" << DistanceMetricToString(metric) << " k=" << k
            << " threads=" << threads;
        // Survivors carry exact, bit-identical distances.
        for (const ScoredIndex& s : topk.Sorted()) {
          EXPECT_EQ(s.score, scores[s.index]);
        }
      }
    }
  }
  SetParallelThreads(0);
}

TEST(PrunedScanTest, RecommendSimilarMatchesFullScan) {
  const std::vector<Visualization> candidates = MakeCandidates(40, 24);
  std::vector<const Visualization*> set;
  for (const auto& v : candidates) set.push_back(&v);
  const Visualization query = candidates[11];
  TaskOptions opts;
  std::vector<double> scores(set.size());
  for (size_t i = 0; i < set.size(); ++i) {
    scores[i] = Distance(query, *set[i], opts.metric, opts.normalization,
                         opts.alignment);
  }
  for (const size_t k : {size_t{1}, size_t{20}, size_t{40}}) {
    const std::vector<size_t> want =
        StableArgsortPrefix(scores, k, TopKOrder::kAscending);
    for (const size_t threads : {size_t{1}, size_t{4}}) {
      SetParallelThreads(threads);
      const std::vector<SimilarResult> got =
          RecommendSimilar(query, set, k, opts);
      ASSERT_EQ(got.size(), want.size());
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].index, want[i]);
        EXPECT_EQ(got[i].distance, scores[want[i]]);
      }
    }
  }
  SetParallelThreads(0);
}

// ---------------------------------------------------------------------------
// ZQL argmin[k=n] pruned path
// ---------------------------------------------------------------------------

class ZqlTopKTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ZV_ASSERT_OK(db_.RegisterTable(testing::MakeTinySales()));
  }

  zql::ZqlResult Run(const std::string& text, bool pruning, size_t threads) {
    SetParallelThreads(threads);
    zql::ZqlOptions opts;
    opts.topk_pruning = pruning;
    zql::ZqlExecutor exec(&db_, "sales", std::move(opts));
    auto result = exec.ExecuteText(text);
    SetParallelThreads(0);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? std::move(result).value() : zql::ZqlResult{};
  }

  ScanDatabase db_;
};

/// The most-similar-to-chair query: argmin over D against a fixed slice —
/// the shape the pruned scan accelerates.
constexpr const char* kArgminQuery =
    "f1 | 'year' | 'sales' | v1 <- 'product'.* | | |\n"
    "f2 | 'year' | 'sales' | 'product'.'chair' | | | v2 <- argmin_v1[k=2] "
    "D(f1, f2)\n"
    "*f3 | 'year' | 'profit' | v2 | | |";

TEST_F(ZqlTopKTest, PrunedArgminByteIdenticalToFullScan) {
  const zql::ZqlResult base = Run(kArgminQuery, /*pruning=*/false, 1);
  ASSERT_EQ(base.outputs.size(), 1u);
  for (const bool pruning : {false, true}) {
    for (const size_t threads : {size_t{1}, size_t{4}}) {
      const zql::ZqlResult got = Run(kArgminQuery, pruning, threads);
      ASSERT_EQ(got.outputs.size(), base.outputs.size());
      const auto& want_viz = base.outputs[0].visuals;
      const auto& got_viz = got.outputs[0].visuals;
      ASSERT_EQ(got_viz.size(), want_viz.size())
          << "pruning=" << pruning << " threads=" << threads;
      for (size_t i = 0; i < got_viz.size(); ++i) {
        EXPECT_EQ(got_viz[i].Label(), want_viz[i].Label());
        EXPECT_EQ(got_viz[i].xs, want_viz[i].xs);
        EXPECT_EQ(got_viz[i].series, want_viz[i].series);
      }
    }
  }
}

TEST_F(ZqlTopKTest, ArgmaxAndThresholdQueriesUnaffectedByPruningFlag) {
  const char* queries[] = {
      // argmax: kernel pruning must not engage (and must not change output).
      "f1 | 'year' | 'sales' | v1 <- 'product'.* | | | v2 <- argmax_v1[k=2] "
      "D(f1, f1)\n"
      "*f3 | 'year' | 'profit' | v2 | | |",
      // threshold: needs every exact score.
      "f1 | 'year' | 'sales' | v1 <- 'product'.* | | | v2 <- argany_v1[t > "
      "0] T(f1)\n"
      "*f3 | 'year' | 'profit' | v2 | | |",
  };
  for (const char* q : queries) {
    const zql::ZqlResult base = Run(q, false, 1);
    const zql::ZqlResult got = Run(q, true, 4);
    ASSERT_EQ(got.outputs.size(), base.outputs.size());
    for (size_t o = 0; o < got.outputs.size(); ++o) {
      ASSERT_EQ(got.outputs[o].visuals.size(),
                base.outputs[o].visuals.size());
      for (size_t i = 0; i < got.outputs[o].visuals.size(); ++i) {
        EXPECT_EQ(got.outputs[o].visuals[i].Label(),
                  base.outputs[o].visuals[i].Label());
        EXPECT_EQ(got.outputs[o].visuals[i].series,
                  base.outputs[o].visuals[i].series);
      }
    }
  }
}

}  // namespace
}  // namespace zv
