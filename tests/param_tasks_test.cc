/// \file param_tasks_test.cc
/// \brief Parameterized property sweeps over the exploration functions:
/// metric axioms for every distance metric x normalization combination,
/// and mechanism laws for every mechanism x filter shape.

#include <cmath>
#include <cstring>
#include <limits>
#include <tuple>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tasks/distance.h"
#include "tasks/primitives.h"
#include "tasks/simd.h"

namespace zv {
namespace {

Visualization RandomSeries(size_t n, uint64_t seed) {
  Visualization v;
  v.x_attr = "t";
  v.y_attr = "y";
  Rng rng(seed);
  Series s;
  s.name = "y";
  for (size_t i = 0; i < n; ++i) {
    v.xs.push_back(Value::Int(static_cast<int64_t>(i)));
    s.ys.push_back(rng.Normal(0, 1));
  }
  v.series.push_back(std::move(s));
  return v;
}

// ---------------------------------------------------------------------------
// Distance metric axioms.
// ---------------------------------------------------------------------------

using MetricCase = std::tuple<DistanceMetric, Normalization>;

class DistanceAxiomTest : public ::testing::TestWithParam<MetricCase> {};

TEST_P(DistanceAxiomTest, IdentityIsZero) {
  const auto [metric, norm] = GetParam();
  for (uint64_t seed : {1, 2, 3}) {
    const Visualization a = RandomSeries(16, seed);
    EXPECT_NEAR(Distance(a, a, metric, norm), 0.0, 1e-9);
  }
}

TEST_P(DistanceAxiomTest, Symmetry) {
  const auto [metric, norm] = GetParam();
  for (uint64_t seed : {4, 5, 6}) {
    const Visualization a = RandomSeries(16, seed);
    const Visualization b = RandomSeries(16, seed + 100);
    EXPECT_NEAR(Distance(a, b, metric, norm), Distance(b, a, metric, norm),
                1e-9);
  }
}

TEST_P(DistanceAxiomTest, NonNegativity) {
  const auto [metric, norm] = GetParam();
  for (uint64_t seed : {7, 8, 9, 10}) {
    const Visualization a = RandomSeries(16, seed);
    const Visualization b = RandomSeries(16, seed * 31);
    EXPECT_GE(Distance(a, b, metric, norm), 0.0);
  }
}

TEST_P(DistanceAxiomTest, FiniteOnDegenerateInputs) {
  const auto [metric, norm] = GetParam();
  Visualization flat = RandomSeries(8, 1);
  for (auto& y : flat.series[0].ys) y = 5.0;  // constant series
  Visualization single = RandomSeries(1, 2);
  EXPECT_TRUE(std::isfinite(Distance(flat, single, metric, norm)));
  EXPECT_TRUE(std::isfinite(Distance(flat, flat, metric, norm)));
}

INSTANTIATE_TEST_SUITE_P(
    MetricGrid, DistanceAxiomTest,
    ::testing::Combine(::testing::Values(DistanceMetric::kEuclidean,
                                         DistanceMetric::kDtw,
                                         DistanceMetric::kKlDivergence,
                                         DistanceMetric::kEmd),
                       ::testing::Values(Normalization::kNone,
                                         Normalization::kZScore,
                                         Normalization::kMinMax)),
    [](const auto& suite_info) {
      const DistanceMetric metric = std::get<0>(suite_info.param);
      const Normalization norm = std::get<1>(suite_info.param);
      std::string name = DistanceMetricToString(metric);
      name += norm == Normalization::kNone      ? "_raw"
              : norm == Normalization::kZScore ? "_zscore"
                                               : "_minmax";
      return name;
    });

// Euclidean additionally satisfies the triangle inequality on aligned
// vectors (the others need not).
class EuclideanTriangleTest : public ::testing::TestWithParam<int> {};

TEST_P(EuclideanTriangleTest, TriangleInequality) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  std::vector<double> a(12), b(12), c(12);
  for (size_t i = 0; i < 12; ++i) {
    a[i] = rng.Normal(0, 1);
    b[i] = rng.Normal(0, 1);
    c[i] = rng.Normal(0, 1);
  }
  const double ab = VectorDistance(a, b, DistanceMetric::kEuclidean);
  const double bc = VectorDistance(b, c, DistanceMetric::kEuclidean);
  const double ac = VectorDistance(a, c, DistanceMetric::kEuclidean);
  EXPECT_LE(ac, ab + bc + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EuclideanTriangleTest,
                         ::testing::Range(1, 11));

// ---------------------------------------------------------------------------
// Mechanism laws across mechanisms and filters.
// ---------------------------------------------------------------------------

struct MechanismCase {
  const char* label;
  Mechanism mech;
  MechanismFilter filter;
};

class MechanismLawTest : public ::testing::TestWithParam<MechanismCase> {};

TEST_P(MechanismLawTest, OutputsAreValidIndicesWithoutDuplicates) {
  Rng rng(11);
  std::vector<double> scores(40);
  for (double& s : scores) s = rng.Normal(0, 2);
  const auto idx = ApplyMechanism(GetParam().mech, scores, GetParam().filter);
  std::set<size_t> seen;
  for (size_t i : idx) {
    EXPECT_LT(i, scores.size());
    EXPECT_TRUE(seen.insert(i).second) << "duplicate index " << i;
  }
}

TEST_P(MechanismLawTest, KBoundsOutputSize) {
  Rng rng(12);
  std::vector<double> scores(40);
  for (double& s : scores) s = rng.Normal(0, 2);
  const auto idx = ApplyMechanism(GetParam().mech, scores, GetParam().filter);
  if (GetParam().filter.k.has_value()) {
    EXPECT_LE(idx.size(), static_cast<size_t>(*GetParam().filter.k));
  } else if (!GetParam().filter.t_above.has_value() &&
             !GetParam().filter.t_below.has_value()) {
    EXPECT_EQ(idx.size(), scores.size());
  }
}

TEST_P(MechanismLawTest, ThresholdsAreRespected) {
  Rng rng(13);
  std::vector<double> scores(40);
  for (double& s : scores) s = rng.Normal(0, 2);
  const auto idx = ApplyMechanism(GetParam().mech, scores, GetParam().filter);
  for (size_t i : idx) {
    if (GetParam().filter.t_above.has_value()) {
      EXPECT_GT(scores[i], *GetParam().filter.t_above);
    }
    if (GetParam().filter.t_below.has_value()) {
      EXPECT_LT(scores[i], *GetParam().filter.t_below);
    }
  }
}

TEST_P(MechanismLawTest, SortedMechanismsAreMonotone) {
  Rng rng(14);
  std::vector<double> scores(40);
  for (double& s : scores) s = rng.Normal(0, 2);
  const auto idx = ApplyMechanism(GetParam().mech, scores, GetParam().filter);
  if (GetParam().mech == Mechanism::kArgAny) return;
  for (size_t i = 1; i < idx.size(); ++i) {
    if (GetParam().mech == Mechanism::kArgMin) {
      EXPECT_LE(scores[idx[i - 1]], scores[idx[i]]);
    } else {
      EXPECT_GE(scores[idx[i - 1]], scores[idx[i]]);
    }
  }
}

MechanismFilter TopK(int64_t k) {
  MechanismFilter f;
  f.k = k;
  return f;
}
MechanismFilter Above(double t) {
  MechanismFilter f;
  f.t_above = t;
  return f;
}
MechanismFilter Below(double t) {
  MechanismFilter f;
  f.t_below = t;
  return f;
}

INSTANTIATE_TEST_SUITE_P(
    MechanismGrid, MechanismLawTest,
    ::testing::Values(MechanismCase{"ArgMinAll", Mechanism::kArgMin, {}},
                      MechanismCase{"ArgMinTop5", Mechanism::kArgMin, TopK(5)},
                      MechanismCase{"ArgMinBelow0", Mechanism::kArgMin,
                                    Below(0)},
                      MechanismCase{"ArgMaxAll", Mechanism::kArgMax, {}},
                      MechanismCase{"ArgMaxTop1", Mechanism::kArgMax, TopK(1)},
                      MechanismCase{"ArgMaxAbove0", Mechanism::kArgMax,
                                    Above(0)},
                      MechanismCase{"ArgAnyTop7", Mechanism::kArgAny, TopK(7)},
                      MechanismCase{"ArgAnyAbove1", Mechanism::kArgAny,
                                    Above(1)}),
    [](const auto& suite_info) { return suite_info.param.label; });

// ---------------------------------------------------------------------------
// Representative sweep: k vs set size.
// ---------------------------------------------------------------------------

class RepresentativeSweepTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(RepresentativeSweepTest, SizeAndValidity) {
  const auto [set_size, k] = GetParam();
  std::vector<Visualization> storage;
  storage.reserve(set_size);
  for (size_t i = 0; i < set_size; ++i) {
    storage.push_back(RandomSeries(10, 1000 + i));
  }
  std::vector<const Visualization*> set;
  for (const auto& v : storage) set.push_back(&v);
  const auto reps = Representatives(set, k);
  EXPECT_LE(reps.size(), std::min(k, set_size));
  EXPECT_GE(reps.size(), std::min<size_t>(1, set_size));
  std::set<size_t> seen;
  for (size_t r : reps) {
    EXPECT_LT(r, set_size);
    EXPECT_TRUE(seen.insert(r).second);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, RepresentativeSweepTest,
    ::testing::Combine(::testing::Values<size_t>(1, 5, 30, 120),
                       ::testing::Values<size_t>(1, 3, 10)));

// ---------------------------------------------------------------------------
// Kernel layer: every tier must agree with scalar bit-for-bit (tasks/simd.h
// contract), at every length, at every pointer misalignment, including NaN
// and infinity inputs, and at every bounded-kernel cut point.
// ---------------------------------------------------------------------------

uint64_t Bits(double d) {
  uint64_t u;
  std::memcpy(&u, &d, sizeof u);
  return u;
}

/// Random buffer with NaN / +inf / -inf sprinkled at fixed positions so
/// special-value propagation is exercised at every length and offset.
std::vector<double> KernelBuf(size_t n, uint64_t seed, bool specials) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = rng.Normal(0, 1);
    if (!specials) continue;
    if (i % 11 == 5) v[i] = std::numeric_limits<double>::quiet_NaN();
    if (i % 13 == 7) v[i] = std::numeric_limits<double>::infinity();
    if (i % 17 == 9) v[i] = -std::numeric_limits<double>::infinity();
  }
  return v;
}

/// The scalar composition EuclideanSpan promises to match at any tier:
/// kernel-table prefix, scalar tail rotating through lanes 0..3,
/// CombineSums fold, NaN canonicalized (see the carve-out in tasks/simd.h).
double ScalarEuclidean(const double* a, const double* b, size_t n) {
  double s[simd::kSumLanes] = {};
  const size_t n16 = n & ~(simd::kSumLanes - 1);
  simd::KernelsFor(simd::Level::kScalar).sum_sq_diff16(a, b, n16, s);
  for (size_t i = n16; i < n; ++i) {
    const double d = a[i] - b[i];
    s[(i - n16) & 3] += d * d;
  }
  const double r = std::sqrt(simd::CombineSums(s));
  return std::isnan(r) ? std::numeric_limits<double>::quiet_NaN() : r;
}

/// Raw kernel lanes are bit-equal except that a NaN lane's payload is
/// outside the contract — both tiers must agree the lane is NaN.
::testing::AssertionResult LanesAgree(double s, double v) {
  if (Bits(s) == Bits(v)) return ::testing::AssertionSuccess();
  if (std::isnan(s) && std::isnan(v)) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "scalar " << s << " (0x" << std::hex << Bits(s) << ") vs vector "
         << v << " (0x" << Bits(v) << ")";
}

// Lengths 0..67 cover empty, sub-vector, exact-multiple, and
// tail-after-blocks shapes (the bounded kernel's 32-element check stride
// falls twice inside 67, and 64 is an exact four-block multiple).
class SimdKernelIdentityTest : public ::testing::TestWithParam<size_t> {};

TEST_P(SimdKernelIdentityTest, SumSqDiff16MatchesScalarBitwise) {
  if (!simd::Supported(simd::Level::kAvx2)) {
    GTEST_SKIP() << "AVX2 tier not compiled or not supported on this CPU";
  }
  const size_t n = GetParam();
  const size_t n16 = n & ~(simd::kSumLanes - 1);
  for (const bool specials : {false, true}) {
    for (size_t offset = 0; offset < 4; ++offset) {
      const std::vector<double> a =
          KernelBuf(n + offset, 1000 + 2 * n + offset, specials);
      const std::vector<double> b =
          KernelBuf(n + offset, 2000 + 3 * n + offset, specials);
      // Nontrivial carried partial sums: the kernels are read-modify-write.
      double ss[simd::kSumLanes], sv[simd::kSumLanes];
      const double carried[4] = {0.125, -3.5, 0.0, 2e-17};
      for (size_t k = 0; k < simd::kSumLanes; ++k) {
        ss[k] = sv[k] = carried[k % 4];
      }
      simd::KernelsFor(simd::Level::kScalar)
          .sum_sq_diff16(a.data() + offset, b.data() + offset, n16, ss);
      simd::KernelsFor(simd::Level::kAvx2)
          .sum_sq_diff16(a.data() + offset, b.data() + offset, n16, sv);
      for (size_t k = 0; k < simd::kSumLanes; ++k) {
        EXPECT_TRUE(LanesAgree(ss[k], sv[k]))
            << "lane " << k << " n=" << n << " offset=" << offset
            << " specials=" << specials;
      }
    }
  }
}

TEST_P(SimdKernelIdentityTest, AbsDiffRowMatchesScalarBitwise) {
  if (!simd::Supported(simd::Level::kAvx2)) {
    GTEST_SKIP() << "AVX2 tier not compiled or not supported on this CPU";
  }
  const size_t n = GetParam();
  const double xs[] = {0.75, -2.5, std::numeric_limits<double>::quiet_NaN(),
                       std::numeric_limits<double>::infinity()};
  for (const bool specials : {false, true}) {
    for (size_t offset = 0; offset < 4; ++offset) {
      const std::vector<double> b =
          KernelBuf(n + offset, 3000 + 5 * n + offset, specials);
      for (const double x : xs) {
        std::vector<double> out_s(n, -1), out_v(n, -1);
        simd::KernelsFor(simd::Level::kScalar)
            .abs_diff_row(x, b.data() + offset, n, out_s.data());
        simd::KernelsFor(simd::Level::kAvx2)
            .abs_diff_row(x, b.data() + offset, n, out_v.data());
        for (size_t j = 0; j < n; ++j) {
          EXPECT_EQ(Bits(out_s[j]), Bits(out_v[j]))
              << "j=" << j << " n=" << n << " offset=" << offset
              << " x=" << x << " specials=" << specials;
        }
      }
    }
  }
}

// The public span kernels dispatch to whatever tier this process resolved;
// both must reproduce the scalar composition exactly (including NaN/inf
// propagation through the accumulators).
TEST_P(SimdKernelIdentityTest, EuclideanSpanMatchesScalarComposition) {
  const size_t n = GetParam();
  for (const bool specials : {false, true}) {
    const std::vector<double> a = KernelBuf(n, 7000 + n, specials);
    const std::vector<double> b = KernelBuf(n, 8000 + n, specials);
    EXPECT_EQ(Bits(EuclideanSpan(a.data(), b.data(), n)),
              Bits(ScalarEuclidean(a.data(), b.data(), n)))
        << "n=" << n << " specials=" << specials;
    EXPECT_EQ(Bits(EuclideanSpanBounded(
                  a.data(), b.data(), n,
                  std::numeric_limits<double>::infinity())),
              Bits(EuclideanSpan(a.data(), b.data(), n)))
        << "n=" << n << " specials=" << specials;
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, SimdKernelIdentityTest,
                         ::testing::Range<size_t>(0, 68));

// Bounded early exit must fire at exactly the same cut points at any tier:
// the check value after each 32-element block equals the unbounded distance
// of that prefix, a bound just below it abandons, the bound itself (strict
// >) and anything above complete bit-identically.
TEST(SimdBoundedCutPointTest, EarlyExitAtEveryCutPoint) {
  const size_t n = 67;  // blocks end at 32 and 64; 3-element scalar tail
  const std::vector<double> a = KernelBuf(n, 41, false);
  const std::vector<double> b = KernelBuf(n, 42, false);
  const double full = EuclideanSpan(a.data(), b.data(), n);
  for (const size_t cut : {size_t{32}, size_t{64}}) {
    const double prefix = EuclideanSpan(a.data(), b.data(), cut);
    // Just below the prefix distance: the check at this cut fires.
    EXPECT_TRUE(std::isinf(EuclideanSpanBounded(
        a.data(), b.data(), n, std::nextafter(prefix, 0.0))))
        << "cut=" << cut;
    // At the prefix distance exactly: strict > does not abandon here, and
    // later checks see a larger bound still — the call completes.
    if (prefix == full) continue;
    EXPECT_EQ(Bits(EuclideanSpanBounded(a.data(), b.data(), n, full)),
              Bits(full))
        << "cut=" << cut;
  }
  // A bound above every check completes bit-identically to the unbounded
  // kernel even though the final distance may exceed it (the last partial
  // check is at 64, the tail is unchecked by design).
  EXPECT_EQ(Bits(EuclideanSpanBounded(a.data(), b.data(), n, full)),
            Bits(full));
}

// DTW dispatches only its elementwise cost row; the recurrence is
// tier-independent. Bounded-with-infinite-bound must equal unbounded
// bitwise, and both must be finite on ordinary inputs.
TEST(SimdBoundedCutPointTest, DtwBoundedDegeneratesBitwise) {
  for (const size_t n : {1u, 5u, 33u, 67u}) {
    const std::vector<double> a = KernelBuf(n, 51 + n, false);
    const std::vector<double> b = KernelBuf(n, 61 + n, false);
    const double d = DtwSpan(a.data(), n, b.data(), n);
    EXPECT_TRUE(std::isfinite(d));
    EXPECT_EQ(Bits(DtwSpanBounded(a.data(), n, b.data(), n,
                                  std::numeric_limits<double>::infinity())),
              Bits(d));
    // A bound below the first row's minimum abandons immediately.
    EXPECT_TRUE(std::isinf(DtwSpanBounded(a.data(), n, b.data(), n, -1.0)));
  }
}

}  // namespace
}  // namespace zv
