/// \file param_tasks_test.cc
/// \brief Parameterized property sweeps over the exploration functions:
/// metric axioms for every distance metric x normalization combination,
/// and mechanism laws for every mechanism x filter shape.

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tasks/distance.h"
#include "tasks/primitives.h"

namespace zv {
namespace {

Visualization RandomSeries(size_t n, uint64_t seed) {
  Visualization v;
  v.x_attr = "t";
  v.y_attr = "y";
  Rng rng(seed);
  Series s;
  s.name = "y";
  for (size_t i = 0; i < n; ++i) {
    v.xs.push_back(Value::Int(static_cast<int64_t>(i)));
    s.ys.push_back(rng.Normal(0, 1));
  }
  v.series.push_back(std::move(s));
  return v;
}

// ---------------------------------------------------------------------------
// Distance metric axioms.
// ---------------------------------------------------------------------------

using MetricCase = std::tuple<DistanceMetric, Normalization>;

class DistanceAxiomTest : public ::testing::TestWithParam<MetricCase> {};

TEST_P(DistanceAxiomTest, IdentityIsZero) {
  const auto [metric, norm] = GetParam();
  for (uint64_t seed : {1, 2, 3}) {
    const Visualization a = RandomSeries(16, seed);
    EXPECT_NEAR(Distance(a, a, metric, norm), 0.0, 1e-9);
  }
}

TEST_P(DistanceAxiomTest, Symmetry) {
  const auto [metric, norm] = GetParam();
  for (uint64_t seed : {4, 5, 6}) {
    const Visualization a = RandomSeries(16, seed);
    const Visualization b = RandomSeries(16, seed + 100);
    EXPECT_NEAR(Distance(a, b, metric, norm), Distance(b, a, metric, norm),
                1e-9);
  }
}

TEST_P(DistanceAxiomTest, NonNegativity) {
  const auto [metric, norm] = GetParam();
  for (uint64_t seed : {7, 8, 9, 10}) {
    const Visualization a = RandomSeries(16, seed);
    const Visualization b = RandomSeries(16, seed * 31);
    EXPECT_GE(Distance(a, b, metric, norm), 0.0);
  }
}

TEST_P(DistanceAxiomTest, FiniteOnDegenerateInputs) {
  const auto [metric, norm] = GetParam();
  Visualization flat = RandomSeries(8, 1);
  for (auto& y : flat.series[0].ys) y = 5.0;  // constant series
  Visualization single = RandomSeries(1, 2);
  EXPECT_TRUE(std::isfinite(Distance(flat, single, metric, norm)));
  EXPECT_TRUE(std::isfinite(Distance(flat, flat, metric, norm)));
}

INSTANTIATE_TEST_SUITE_P(
    MetricGrid, DistanceAxiomTest,
    ::testing::Combine(::testing::Values(DistanceMetric::kEuclidean,
                                         DistanceMetric::kDtw,
                                         DistanceMetric::kKlDivergence,
                                         DistanceMetric::kEmd),
                       ::testing::Values(Normalization::kNone,
                                         Normalization::kZScore,
                                         Normalization::kMinMax)),
    [](const auto& suite_info) {
      const DistanceMetric metric = std::get<0>(suite_info.param);
      const Normalization norm = std::get<1>(suite_info.param);
      std::string name = DistanceMetricToString(metric);
      name += norm == Normalization::kNone      ? "_raw"
              : norm == Normalization::kZScore ? "_zscore"
                                               : "_minmax";
      return name;
    });

// Euclidean additionally satisfies the triangle inequality on aligned
// vectors (the others need not).
class EuclideanTriangleTest : public ::testing::TestWithParam<int> {};

TEST_P(EuclideanTriangleTest, TriangleInequality) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  std::vector<double> a(12), b(12), c(12);
  for (size_t i = 0; i < 12; ++i) {
    a[i] = rng.Normal(0, 1);
    b[i] = rng.Normal(0, 1);
    c[i] = rng.Normal(0, 1);
  }
  const double ab = VectorDistance(a, b, DistanceMetric::kEuclidean);
  const double bc = VectorDistance(b, c, DistanceMetric::kEuclidean);
  const double ac = VectorDistance(a, c, DistanceMetric::kEuclidean);
  EXPECT_LE(ac, ab + bc + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EuclideanTriangleTest,
                         ::testing::Range(1, 11));

// ---------------------------------------------------------------------------
// Mechanism laws across mechanisms and filters.
// ---------------------------------------------------------------------------

struct MechanismCase {
  const char* label;
  Mechanism mech;
  MechanismFilter filter;
};

class MechanismLawTest : public ::testing::TestWithParam<MechanismCase> {};

TEST_P(MechanismLawTest, OutputsAreValidIndicesWithoutDuplicates) {
  Rng rng(11);
  std::vector<double> scores(40);
  for (double& s : scores) s = rng.Normal(0, 2);
  const auto idx = ApplyMechanism(GetParam().mech, scores, GetParam().filter);
  std::set<size_t> seen;
  for (size_t i : idx) {
    EXPECT_LT(i, scores.size());
    EXPECT_TRUE(seen.insert(i).second) << "duplicate index " << i;
  }
}

TEST_P(MechanismLawTest, KBoundsOutputSize) {
  Rng rng(12);
  std::vector<double> scores(40);
  for (double& s : scores) s = rng.Normal(0, 2);
  const auto idx = ApplyMechanism(GetParam().mech, scores, GetParam().filter);
  if (GetParam().filter.k.has_value()) {
    EXPECT_LE(idx.size(), static_cast<size_t>(*GetParam().filter.k));
  } else if (!GetParam().filter.t_above.has_value() &&
             !GetParam().filter.t_below.has_value()) {
    EXPECT_EQ(idx.size(), scores.size());
  }
}

TEST_P(MechanismLawTest, ThresholdsAreRespected) {
  Rng rng(13);
  std::vector<double> scores(40);
  for (double& s : scores) s = rng.Normal(0, 2);
  const auto idx = ApplyMechanism(GetParam().mech, scores, GetParam().filter);
  for (size_t i : idx) {
    if (GetParam().filter.t_above.has_value()) {
      EXPECT_GT(scores[i], *GetParam().filter.t_above);
    }
    if (GetParam().filter.t_below.has_value()) {
      EXPECT_LT(scores[i], *GetParam().filter.t_below);
    }
  }
}

TEST_P(MechanismLawTest, SortedMechanismsAreMonotone) {
  Rng rng(14);
  std::vector<double> scores(40);
  for (double& s : scores) s = rng.Normal(0, 2);
  const auto idx = ApplyMechanism(GetParam().mech, scores, GetParam().filter);
  if (GetParam().mech == Mechanism::kArgAny) return;
  for (size_t i = 1; i < idx.size(); ++i) {
    if (GetParam().mech == Mechanism::kArgMin) {
      EXPECT_LE(scores[idx[i - 1]], scores[idx[i]]);
    } else {
      EXPECT_GE(scores[idx[i - 1]], scores[idx[i]]);
    }
  }
}

MechanismFilter TopK(int64_t k) {
  MechanismFilter f;
  f.k = k;
  return f;
}
MechanismFilter Above(double t) {
  MechanismFilter f;
  f.t_above = t;
  return f;
}
MechanismFilter Below(double t) {
  MechanismFilter f;
  f.t_below = t;
  return f;
}

INSTANTIATE_TEST_SUITE_P(
    MechanismGrid, MechanismLawTest,
    ::testing::Values(MechanismCase{"ArgMinAll", Mechanism::kArgMin, {}},
                      MechanismCase{"ArgMinTop5", Mechanism::kArgMin, TopK(5)},
                      MechanismCase{"ArgMinBelow0", Mechanism::kArgMin,
                                    Below(0)},
                      MechanismCase{"ArgMaxAll", Mechanism::kArgMax, {}},
                      MechanismCase{"ArgMaxTop1", Mechanism::kArgMax, TopK(1)},
                      MechanismCase{"ArgMaxAbove0", Mechanism::kArgMax,
                                    Above(0)},
                      MechanismCase{"ArgAnyTop7", Mechanism::kArgAny, TopK(7)},
                      MechanismCase{"ArgAnyAbove1", Mechanism::kArgAny,
                                    Above(1)}),
    [](const auto& suite_info) { return suite_info.param.label; });

// ---------------------------------------------------------------------------
// Representative sweep: k vs set size.
// ---------------------------------------------------------------------------

class RepresentativeSweepTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(RepresentativeSweepTest, SizeAndValidity) {
  const auto [set_size, k] = GetParam();
  std::vector<Visualization> storage;
  storage.reserve(set_size);
  for (size_t i = 0; i < set_size; ++i) {
    storage.push_back(RandomSeries(10, 1000 + i));
  }
  std::vector<const Visualization*> set;
  for (const auto& v : storage) set.push_back(&v);
  const auto reps = Representatives(set, k);
  EXPECT_LE(reps.size(), std::min(k, set_size));
  EXPECT_GE(reps.size(), std::min<size_t>(1, set_size));
  std::set<size_t> seen;
  for (size_t r : reps) {
    EXPECT_LT(r, set_size);
    EXPECT_TRUE(seen.insert(r).second);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, RepresentativeSweepTest,
    ::testing::Combine(::testing::Values<size_t>(1, 5, 30, 120),
                       ::testing::Values<size_t>(1, 3, 10)));

}  // namespace
}  // namespace zv
