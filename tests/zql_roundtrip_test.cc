/// \file zql_roundtrip_test.cc
/// \brief Seeded property tests for the canonical-serialization contract
/// (src/zql/canonical.h) and the fingerprint identity built on it
/// (src/server/fingerprint.h): for randomly generated valid ZQL,
/// parse → CanonicalText reaches a fixed point in one step
/// (re-parse → re-serialize is byte-identical), whitespace respellings
/// outside quoted literals canonicalize to the same bytes and therefore
/// the same QueryFingerprint, and any semantic mutation (a threshold
/// digit, a set element, an axis attribute) moves the fingerprint.
/// Queries are assembled from parameterized templates covering every
/// clause family the parser accepts — name derivations, axis sets,
/// attribute arithmetic, Z-set algebra (|, &, \, complement, nesting),
/// multi-viz sets, binned specs, and argmin/argmax/argany processes with
/// nested reducers — so the generator is valid by construction while
/// still randomizing structure, not just literals.

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "common/strings.h"
#include "server/fingerprint.h"
#include "zql/canonical.h"
#include "zql/executor.h"
#include "zql/parser.h"

namespace zv::zql {
namespace {

/// One random spelling drawn from each clause family. `rng` drives every
/// choice, so a fixed seed reproduces the exact query sequence.
class QueryGen {
 public:
  explicit QueryGen(uint32_t seed) : rng_(seed) {}

  /// A draw in [lo, lo + mod) narrowed to unsigned — mt19937 yields
  /// unsigned long on LP64, which does not match the %u conversions below.
  unsigned U(unsigned lo, unsigned mod) {
    return lo + static_cast<unsigned>(rng_() % mod);
  }

  std::string NextQuery() {
    switch (rng_() % 6) {
      case 0:  // single output row, every cell populated
        return StrFormat("*f1 | %s | %s | %s | %s | %s |\n", X().c_str(),
                         Y().c_str(), Z("v1").c_str(), Constraint().c_str(),
                         Viz().c_str());
      case 1:  // the paper's similarity-search shape: declare, score, plot
        return StrFormat(
            "f1 | 'year' | %s | %s | | |\n"
            "f2 | 'year' | %s | 'product'.'chair' | | | %s\n"
            "*f3 | 'year' | 'profit' | v2 | | %s |\n",
            Y().c_str(), Z("v1").c_str(), Y().c_str(), Process().c_str(),
            Viz().c_str());
      case 2:  // name derivation off a scored row
        return StrFormat(
            "f1 | %s | %s | %s | %s | | v2 <- argmax_v1[k=%u] T(f1)\n"
            "*f2=f1[%u:%u] | | | | | |\n",
            X().c_str(), Y().c_str(), Z("v1").c_str(), Constraint().c_str(),
            U(2, 8), U(0, 2), U(2, 3));
      case 3:  // axis variables: iterate x and y attribute sets
        return StrFormat(
            "f1 | x1 <- {%s} | y1 <- {'sales', 'profit'} | %s | | | "
            "x2, y2 <- argmin_x1,y1[k=%u] D(f1, f1)\n"
            "*f2 | x2 | y2 | 'product'.'chair' | | %s |\n",
            rng_() % 2 ? "'year', 'month'" : "'year'", Z("v1").c_str(),
            U(1, 5), Viz().c_str());
      case 4:  // two independent scored rows in one query
        return StrFormat(
            "f1 | 'year' | %s | %s | | | (v2 <- argmax_v1[k=%u] T(f1)), "
            "(v3 <- argmin_v1[k=%u] T(f1))\n"
            "*f2 | 'year' | %s | v2 | | |\n"
            "*f3 | 'year' | %s | v3 | | |\n",
            Y().c_str(), Z("v1").c_str(), U(1, 4), U(1, 4),
            Y().c_str(), Y().c_str());
      default:  // representatives / filtered process forms
        return StrFormat(
            "f1 | %s | %s | %s | %s | %s | %s\n"
            "*f2 | %s | %s | v2 | | |\n",
            X().c_str(), Y().c_str(), Z("v1").c_str(), Constraint().c_str(),
            Viz().c_str(),
            rng_() % 2
                ? StrFormat("v2 <- R(%u, v1, f1)", U(2, 8)).c_str()
                : StrFormat("v2 <- argany_v1[t > %u] T(f1)", U(0, 50))
                      .c_str(),
            X().c_str(), Y().c_str());
    }
  }

  std::mt19937& rng() { return rng_; }

 private:
  std::string X() {
    const char* const xs[] = {"'year'", "'month'", "'sales'"};
    return xs[rng_() % 3];
  }
  std::string Y() {
    switch (rng_() % 3) {
      case 0:
        return "'sales'";
      case 1:
        return "'profit'";
      default:
        return "'profit' + 'sales'";  // attribute arithmetic
    }
  }
  std::string Z(const char* var) {
    switch (rng_() % 6) {
      case 0:
        return StrFormat("%s <- 'product'.*", var);
      case 1:
        return "'location'.'US'";
      case 2:
        return StrFormat("%s <- 'location'.{'US', 'UK'}", var);
      case 3:
        return StrFormat("%s <- 'product'.(* - 'chair')", var);
      case 4:
        return StrFormat("%s <- ('product'.{'chair','desk'} | 'location'.'US')",
                         var);
      default:
        return StrFormat("%s <- (* \\ {'year', 'sales'}).*", var);
    }
  }
  std::string Constraint() {
    const char* const cs[] = {"", "location='US'", "sales > 100",
                              "location='US' AND sales > 250"};
    return cs[rng_() % 4];
  }
  std::string Viz() {
    switch (rng_() % 5) {
      case 0:
        return "";
      case 1:
        return "bar.(y=agg('sum'))";
      case 2:
        return StrFormat("bar.(x=bin(%u), y=agg('sum'))", U(5, 40));
      case 3:
        return "t1 <- {bar, dotplot}.(x=bin(20), y=agg('sum'))";
      default:
        return "line.(y=agg('avg'))";
    }
  }
  std::string Process() {
    switch (rng_() % 3) {
      case 0:
        return StrFormat("v2 <- argmin_v1[k=%u] D(f1, f2)", U(1, 10));
      case 1:
        return StrFormat("v2 <- argmax_v1[k=%u] D(f1, f2)", U(1, 10));
      default:
        return "v2 <- argmin_v1[k=inf] D(f1, f2)";
    }
  }

  std::mt19937 rng_;
};

/// Random whitespace respelling that cannot change meaning: every run of
/// spaces outside single-quoted literals stretches to 1–3 spaces, and
/// lines gain random leading indentation. Quoted literals pass verbatim
/// (whitespace inside them is content, not formatting).
std::string PerturbWhitespace(const std::string& text, std::mt19937* rng) {
  std::string out;
  bool in_quote = false;
  bool at_line_start = true;
  for (char c : text) {
    if (at_line_start && c != '\n' && (*rng)() % 2 == 0) {
      out.append(1 + (*rng)() % 3, ' ');
    }
    at_line_start = false;
    if (c == '\'') in_quote = !in_quote;
    if (c == ' ' && !in_quote) {
      out.append(1 + (*rng)() % 3, ' ');
    } else {
      out.push_back(c);
    }
    if (c == '\n') at_line_start = true;
  }
  return out;
}

std::string Fingerprint(const std::string& canonical) {
  return server::QueryFingerprint("sales", 1, "roaring", OptLevel::kInterTask,
                                  canonical, "");
}

TEST(ZqlRoundtripTest, CanonicalTextIsAFixedPoint) {
  QueryGen gen(20160714);
  for (int i = 0; i < 300; ++i) {
    const std::string text = gen.NextQuery();
    Result<ZqlQuery> q = ParseQuery(text);
    ASSERT_TRUE(q.ok()) << q.status().ToString() << "\n" << text;
    const std::string c1 = CanonicalText(q.value());
    Result<ZqlQuery> q2 = ParseQuery(c1);
    ASSERT_TRUE(q2.ok()) << "canonical text failed to re-parse: "
                         << q2.status().ToString() << "\n"
                         << c1;
    const std::string c2 = CanonicalText(q2.value());
    EXPECT_EQ(c1, c2) << "not idempotent for:\n" << text;
  }
}

TEST(ZqlRoundtripTest, WhitespaceRespellingsShareOneFingerprint) {
  QueryGen gen(424242);
  for (int i = 0; i < 200; ++i) {
    const std::string text = gen.NextQuery();
    Result<ZqlQuery> q = ParseQuery(text);
    ASSERT_TRUE(q.ok()) << q.status().ToString() << "\n" << text;
    const std::string c1 = CanonicalText(q.value());
    const std::string respelled = PerturbWhitespace(text, &gen.rng());
    Result<ZqlQuery> q2 = ParseQuery(respelled);
    ASSERT_TRUE(q2.ok()) << q2.status().ToString() << "\n" << respelled;
    EXPECT_EQ(c1, CanonicalText(q2.value()))
        << "respelling changed canonical bytes:\n"
        << text << "\nvs\n"
        << respelled;
    EXPECT_EQ(Fingerprint(c1), Fingerprint(CanonicalText(q2.value())));
  }
}

TEST(ZqlRoundtripTest, SemanticMutationsMoveTheFingerprint) {
  // Pairs that differ in exactly one semantic atom. Each must parse and
  // land on a different canonical text, hence a different fingerprint.
  const char* const pairs[][2] = {
      {"*f1 | 'year' | 'sales' | v1 <- 'product'.* | | | "
       "v2 <- argmin_v1[k=10] D(f1, f1)",
       "*f1 | 'year' | 'sales' | v1 <- 'product'.* | | | "
       "v2 <- argmin_v1[k=11] D(f1, f1)"},
      {"*f1 | 'year' | 'sales' | 'location'.'US' | | bar.(x=bin(20)) |",
       "*f1 | 'year' | 'sales' | 'location'.'US' | | bar.(x=bin(21)) |"},
      {"*f1 | 'year' | 'sales' | v1 <- 'location'.{'US', 'UK'} | | |",
       "*f1 | 'year' | 'sales' | v1 <- 'location'.{'US', 'FR'} | | |"},
      {"*f1 | 'year' | 'sales' | 'location'.'US' | sales > 100 | |",
       "*f1 | 'year' | 'sales' | 'location'.'US' | sales > 101 | |"},
      {"*f1 | 'year' | 'sales' | 'location'.'US' | | |",
       "*f1 | 'month' | 'sales' | 'location'.'US' | | |"},
  };
  for (const auto& pair : pairs) {
    Result<ZqlQuery> a = ParseQuery(pair[0]);
    Result<ZqlQuery> b = ParseQuery(pair[1]);
    ASSERT_TRUE(a.ok()) << a.status().ToString() << "\n" << pair[0];
    ASSERT_TRUE(b.ok()) << b.status().ToString() << "\n" << pair[1];
    const std::string ca = CanonicalText(a.value());
    const std::string cb = CanonicalText(b.value());
    EXPECT_NE(ca, cb) << pair[0] << "\nvs\n" << pair[1];
    EXPECT_NE(Fingerprint(ca), Fingerprint(cb));
  }
}

TEST(ZqlRoundtripTest, FingerprintSeparatesEveryKeyComponent) {
  const std::string canonical = [] {
    Result<ZqlQuery> q = ParseQuery(
        "*f1 | 'year' | 'sales' | v1 <- 'product'.* | | bar.(y=agg('sum')) "
        "|");
    EXPECT_TRUE(q.ok());
    return CanonicalText(q.value());
  }();
  const std::string base = server::QueryFingerprint(
      "sales", 1, "roaring", OptLevel::kInterTask, canonical, "");
  EXPECT_NE(base, server::QueryFingerprint("census", 1, "roaring",
                                           OptLevel::kInterTask, canonical,
                                           ""));
  EXPECT_NE(base, server::QueryFingerprint("sales", 2, "roaring",
                                           OptLevel::kInterTask, canonical,
                                           ""));
  EXPECT_NE(base, server::QueryFingerprint("sales", 1, "scan",
                                           OptLevel::kInterTask, canonical,
                                           ""));
  EXPECT_NE(base, server::QueryFingerprint("sales", 1, "roaring",
                                           OptLevel::kNoOpt, canonical, ""));
  EXPECT_NE(base, server::QueryFingerprint("sales", 1, "roaring",
                                           OptLevel::kInterTask, canonical,
                                           "user-input-hash"));
}

}  // namespace
}  // namespace zv::zql
