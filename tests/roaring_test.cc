#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "roaring/roaring.h"

namespace zv::roaring {
namespace {

// --- container-level tests ---------------------------------------------------

TEST(ContainerTest, StartsAsEmptyArray) {
  Container c;
  EXPECT_EQ(c.type(), Container::Type::kArray);
  EXPECT_EQ(c.Cardinality(), 0u);
  EXPECT_FALSE(c.Contains(0));
}

TEST(ContainerTest, AddContainsRemove) {
  Container c;
  EXPECT_TRUE(c.Add(5));
  EXPECT_FALSE(c.Add(5));
  EXPECT_TRUE(c.Contains(5));
  EXPECT_EQ(c.Cardinality(), 1u);
  EXPECT_TRUE(c.Remove(5));
  EXPECT_FALSE(c.Remove(5));
  EXPECT_EQ(c.Cardinality(), 0u);
}

TEST(ContainerTest, ConvertsToBitmapPast4096) {
  Container c;
  for (uint32_t i = 0; i <= kArrayMaxCardinality; ++i) {
    c.Add(static_cast<uint16_t>(i * 3 % 65536));
  }
  EXPECT_EQ(c.type(), Container::Type::kBitmap);
  EXPECT_EQ(c.Cardinality(), kArrayMaxCardinality + 1);
}

TEST(ContainerTest, ShrinksBackToArrayOnRemove) {
  std::vector<uint16_t> vals;
  for (uint32_t i = 0; i < kArrayMaxCardinality + 10; ++i) {
    vals.push_back(static_cast<uint16_t>(i));
  }
  Container c = Container::MakeArray(vals);
  EXPECT_EQ(c.type(), Container::Type::kBitmap);
  for (uint32_t i = 0; i < 11; ++i) {
    c.Remove(static_cast<uint16_t>(i));
  }
  EXPECT_EQ(c.type(), Container::Type::kArray);
  EXPECT_EQ(c.Cardinality(), kArrayMaxCardinality - 1);
}

TEST(ContainerTest, RankCountsStrictlySmaller) {
  Container c = Container::MakeArray({10, 20, 30});
  EXPECT_EQ(c.Rank(10), 0u);
  EXPECT_EQ(c.Rank(11), 1u);
  EXPECT_EQ(c.Rank(31), 3u);
}

TEST(ContainerTest, RunOptimizeCompressesRuns) {
  Container c;
  for (uint16_t i = 100; i < 2100; ++i) c.Add(i);
  EXPECT_EQ(c.type(), Container::Type::kArray);
  const size_t before = c.SizeInBytes();
  EXPECT_TRUE(c.RunOptimize());
  EXPECT_EQ(c.type(), Container::Type::kRun);
  EXPECT_LT(c.SizeInBytes(), before);
  EXPECT_EQ(c.Cardinality(), 2000u);
  EXPECT_TRUE(c.Contains(100));
  EXPECT_TRUE(c.Contains(2099));
  EXPECT_FALSE(c.Contains(2100));
}

TEST(ContainerTest, RunOptimizeDeclinesScatteredData) {
  Container c;
  for (uint32_t i = 0; i < 1000; ++i) c.Add(static_cast<uint16_t>(i * 61));
  EXPECT_FALSE(c.RunOptimize());
  EXPECT_EQ(c.type(), Container::Type::kArray);
}

TEST(ContainerTest, RunContainerAddRemoveSplitsRuns) {
  Container c = Container::MakeRuns({{10, 10}});  // 10..20
  EXPECT_EQ(c.Cardinality(), 11u);
  EXPECT_TRUE(c.Remove(15));  // split into 10..14, 16..20
  EXPECT_EQ(c.Cardinality(), 10u);
  EXPECT_FALSE(c.Contains(15));
  EXPECT_TRUE(c.Contains(14));
  EXPECT_TRUE(c.Contains(16));
  EXPECT_TRUE(c.Add(15));  // merge back
  EXPECT_EQ(c.Cardinality(), 11u);
}

TEST(ContainerTest, BinaryOpsMatchReference) {
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    std::set<uint16_t> sa, sb;
    const size_t na = 1 + rng.Uniform(6000), nb = 1 + rng.Uniform(6000);
    for (size_t i = 0; i < na; ++i) {
      sa.insert(static_cast<uint16_t>(rng.Uniform(65536)));
    }
    for (size_t i = 0; i < nb; ++i) {
      sb.insert(static_cast<uint16_t>(rng.Uniform(65536)));
    }
    Container a = Container::MakeArray({sa.begin(), sa.end()});
    Container b = Container::MakeArray({sb.begin(), sb.end()});
    if (trial % 3 == 0) a.RunOptimize();
    if (trial % 4 == 0) b.RunOptimize();

    std::set<uint16_t> want_and, want_or, want_andnot, want_xor;
    std::set_intersection(sa.begin(), sa.end(), sb.begin(), sb.end(),
                          std::inserter(want_and, want_and.begin()));
    std::set_union(sa.begin(), sa.end(), sb.begin(), sb.end(),
                   std::inserter(want_or, want_or.begin()));
    std::set_difference(sa.begin(), sa.end(), sb.begin(), sb.end(),
                        std::inserter(want_andnot, want_andnot.begin()));
    std::set_symmetric_difference(sa.begin(), sa.end(), sb.begin(), sb.end(),
                                  std::inserter(want_xor, want_xor.begin()));

    auto check = [](const Container& c, const std::set<uint16_t>& want,
                    const char* op) {
      EXPECT_EQ(c.Cardinality(), want.size()) << op;
      std::vector<uint16_t> got;
      c.ForEach([&got](uint16_t v) { got.push_back(v); });
      EXPECT_TRUE(std::equal(got.begin(), got.end(), want.begin(),
                             want.end()))
          << op;
    };
    check(Container::And(a, b), want_and, "and");
    check(Container::Or(a, b), want_or, "or");
    check(Container::AndNot(a, b), want_andnot, "andnot");
    check(Container::Xor(a, b), want_xor, "xor");
    EXPECT_EQ(Container::AndCardinality(a, b), want_and.size());
  }
}

// --- bitmap-level tests --------------------------------------------------------

TEST(RoaringTest, EmptyBitmap) {
  RoaringBitmap bm;
  EXPECT_TRUE(bm.Empty());
  EXPECT_EQ(bm.Cardinality(), 0u);
  EXPECT_FALSE(bm.Contains(42));
}

TEST(RoaringTest, SpansChunks) {
  RoaringBitmap bm;
  bm.Add(1);
  bm.Add(70000);   // chunk 1
  bm.Add(140000);  // chunk 2
  EXPECT_EQ(bm.Cardinality(), 3u);
  EXPECT_TRUE(bm.Contains(70000));
  EXPECT_FALSE(bm.Contains(70001));
  EXPECT_EQ(bm.ToVector(), (std::vector<uint32_t>{1, 70000, 140000}));
}

TEST(RoaringTest, FromRangeAndRank) {
  RoaringBitmap bm = RoaringBitmap::FromRange(60000, 70000);
  EXPECT_EQ(bm.Cardinality(), 10000u);
  EXPECT_TRUE(bm.Contains(60000));
  EXPECT_TRUE(bm.Contains(69999));
  EXPECT_FALSE(bm.Contains(70000));
  EXPECT_EQ(bm.Rank(60000), 0u);
  EXPECT_EQ(bm.Rank(65000), 5000u);
  EXPECT_EQ(bm.Rank(1000000), 10000u);
}

TEST(RoaringTest, RemoveErasesEmptyChunks) {
  RoaringBitmap bm;
  bm.Add(100000);
  bm.Remove(100000);
  EXPECT_TRUE(bm.Empty());
}

TEST(RoaringTest, SetOpsMatchReference) {
  Rng rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    std::set<uint32_t> sa, sb;
    for (int i = 0; i < 20000; ++i) {
      sa.insert(static_cast<uint32_t>(rng.Uniform(1 << 20)));
      sb.insert(static_cast<uint32_t>(rng.Uniform(1 << 20)));
    }
    RoaringBitmap a =
        RoaringBitmap::FromValues({sa.begin(), sa.end()});
    RoaringBitmap b =
        RoaringBitmap::FromValues({sb.begin(), sb.end()});

    std::set<uint32_t> want_and, want_or, want_andnot, want_xor;
    std::set_intersection(sa.begin(), sa.end(), sb.begin(), sb.end(),
                          std::inserter(want_and, want_and.begin()));
    std::set_union(sa.begin(), sa.end(), sb.begin(), sb.end(),
                   std::inserter(want_or, want_or.begin()));
    std::set_difference(sa.begin(), sa.end(), sb.begin(), sb.end(),
                        std::inserter(want_andnot, want_andnot.begin()));
    std::set_symmetric_difference(sa.begin(), sa.end(), sb.begin(), sb.end(),
                                  std::inserter(want_xor, want_xor.begin()));

    EXPECT_EQ(RoaringBitmap::And(a, b).ToVector(),
              std::vector<uint32_t>(want_and.begin(), want_and.end()));
    EXPECT_EQ(RoaringBitmap::Or(a, b).ToVector(),
              std::vector<uint32_t>(want_or.begin(), want_or.end()));
    EXPECT_EQ(RoaringBitmap::AndNot(a, b).ToVector(),
              std::vector<uint32_t>(want_andnot.begin(), want_andnot.end()));
    EXPECT_EQ(RoaringBitmap::Xor(a, b).ToVector(),
              std::vector<uint32_t>(want_xor.begin(), want_xor.end()));
    EXPECT_EQ(RoaringBitmap::AndCardinality(a, b), want_and.size());
  }
}

TEST(RoaringTest, DenseRangesCompressWell) {
  RoaringBitmap bm = RoaringBitmap::FromRange(0, 1000000);
  bm.RunOptimize();
  // One run per chunk: far below the 125KB a plain bitset would need.
  EXPECT_LT(bm.SizeInBytes(), 2000u);
  EXPECT_EQ(bm.Cardinality(), 1000000u);
}

TEST(RoaringTest, EqualityIsRepresentationAgnostic) {
  RoaringBitmap a = RoaringBitmap::FromRange(0, 5000);
  RoaringBitmap b = RoaringBitmap::FromRange(0, 5000);
  b.RunOptimize();
  EXPECT_TRUE(a == b);
}

TEST(RoaringTest, ForEachAscendingOrder) {
  Rng rng(3);
  std::vector<uint32_t> vals;
  for (int i = 0; i < 50000; ++i) {
    vals.push_back(static_cast<uint32_t>(rng.Uniform(1u << 24)));
  }
  RoaringBitmap bm = RoaringBitmap::FromValues(vals);
  uint32_t prev = 0;
  bool first = true;
  uint64_t count = 0;
  bm.ForEach([&](uint32_t v) {
    if (!first) { EXPECT_GT(v, prev); }
    prev = v;
    first = false;
    ++count;
  });
  EXPECT_EQ(count, bm.Cardinality());
}

}  // namespace
}  // namespace zv::roaring
