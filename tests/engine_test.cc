#include <memory>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "engine/roaring_db.h"
#include "engine/scan_db.h"
#include "sql/parser.h"
#include "tests/test_util.h"
#include "workload/datasets.h"

namespace zv {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto table = testing::MakeTinySales();
    ZV_ASSERT_OK(scan_.RegisterTable(table));
    ZV_ASSERT_OK(roaring_.RegisterTable(table));
  }
  ScanDatabase scan_;
  RoaringDatabase roaring_;
};

TEST_F(EngineTest, SimpleAggregation) {
  const char* q =
      "SELECT year, SUM(sales) FROM sales WHERE product = 'chair' AND "
      "location = 'US' GROUP BY year ORDER BY year";
  for (Database* db : std::vector<Database*>{&scan_, &roaring_}) {
    ZV_ASSERT_OK_AND_ASSIGN(ResultSet rs, db->ExecuteSql(q));
    ASSERT_EQ(rs.num_rows(), 3u) << db->name();
    EXPECT_EQ(rs.rows[0][0], Value::Int(2014));
    EXPECT_DOUBLE_EQ(rs.rows[0][1].AsDouble(), 10);
    EXPECT_DOUBLE_EQ(rs.rows[1][1].AsDouble(), 20);
    EXPECT_DOUBLE_EQ(rs.rows[2][1].AsDouble(), 30);
  }
}

TEST_F(EngineTest, AllAggregateFunctions) {
  const char* q =
      "SELECT product, SUM(sales), AVG(sales), MIN(sales), MAX(sales), "
      "COUNT(*) FROM sales GROUP BY product ORDER BY product";
  for (Database* db : std::vector<Database*>{&scan_, &roaring_}) {
    ZV_ASSERT_OK_AND_ASSIGN(ResultSet rs, db->ExecuteSql(q));
    ASSERT_EQ(rs.num_rows(), 3u);
    // chair: sales 10,20,30,30,20,10.
    EXPECT_EQ(rs.rows[0][0], Value::Str("chair"));
    EXPECT_DOUBLE_EQ(rs.rows[0][1].AsDouble(), 120);
    EXPECT_DOUBLE_EQ(rs.rows[0][2].AsDouble(), 20);
    EXPECT_DOUBLE_EQ(rs.rows[0][3].AsDouble(), 10);
    EXPECT_DOUBLE_EQ(rs.rows[0][4].AsDouble(), 30);
    EXPECT_EQ(rs.rows[0][5], Value::Int(6));
  }
}

TEST_F(EngineTest, GlobalAggregateNoGroupBy) {
  for (Database* db : std::vector<Database*>{&scan_, &roaring_}) {
    ZV_ASSERT_OK_AND_ASSIGN(ResultSet rs,
                            db->ExecuteSql("SELECT COUNT(*) FROM sales"));
    ASSERT_EQ(rs.num_rows(), 1u);
    EXPECT_EQ(rs.rows[0][0], Value::Int(15));
  }
}

TEST_F(EngineTest, Projection) {
  const char* q =
      "SELECT year, sales FROM sales WHERE product = 'stapler' ORDER BY year";
  for (Database* db : std::vector<Database*>{&scan_, &roaring_}) {
    ZV_ASSERT_OK_AND_ASSIGN(ResultSet rs, db->ExecuteSql(q));
    ASSERT_EQ(rs.num_rows(), 3u);
    EXPECT_DOUBLE_EQ(rs.rows[2][1].AsDouble(), 32);
  }
}

TEST_F(EngineTest, InPredicate) {
  const char* q =
      "SELECT product, SUM(sales) FROM sales WHERE product IN "
      "('chair','stapler') GROUP BY product ORDER BY product";
  for (Database* db : std::vector<Database*>{&scan_, &roaring_}) {
    ZV_ASSERT_OK_AND_ASSIGN(ResultSet rs, db->ExecuteSql(q));
    ASSERT_EQ(rs.num_rows(), 2u);
    EXPECT_EQ(rs.rows[0][0], Value::Str("chair"));
    EXPECT_EQ(rs.rows[1][0], Value::Str("stapler"));
  }
}

TEST_F(EngineTest, NotEqualAndOr) {
  const char* q =
      "SELECT product, COUNT(*) FROM sales WHERE product != 'desk' OR "
      "location = 'UK' GROUP BY product ORDER BY product";
  for (Database* db : std::vector<Database*>{&scan_, &roaring_}) {
    ZV_ASSERT_OK_AND_ASSIGN(ResultSet rs, db->ExecuteSql(q));
    ASSERT_EQ(rs.num_rows(), 3u);
    EXPECT_EQ(rs.rows[1][0], Value::Str("desk"));
    EXPECT_EQ(rs.rows[1][1], Value::Int(3));  // only the UK desks
  }
}

TEST_F(EngineTest, NumericPredicateResidual) {
  // sales > 25 touches an un-indexed measure column: the roaring backend
  // must fall back to residual filtering.
  const char* q =
      "SELECT product, COUNT(*) FROM sales WHERE sales > 25 AND location = "
      "'US' GROUP BY product ORDER BY product";
  ZV_ASSERT_OK_AND_ASSIGN(ResultSet a, scan_.ExecuteSql(q));
  ZV_ASSERT_OK_AND_ASSIGN(ResultSet b, roaring_.ExecuteSql(q));
  ASSERT_EQ(a.num_rows(), b.num_rows());
  for (size_t i = 0; i < a.num_rows(); ++i) {
    EXPECT_EQ(a.rows[i], b.rows[i]);
  }
  // chair/US has one >25 (30); desk/US has 50,40,30; stapler/US has 32.
  EXPECT_EQ(a.rows[0][1], Value::Int(1));
  EXPECT_EQ(a.rows[1][1], Value::Int(3));
  EXPECT_EQ(a.rows[2][1], Value::Int(1));
}

TEST_F(EngineTest, BetweenOnNumeric) {
  const char* q = "SELECT COUNT(*) FROM sales WHERE sales BETWEEN 20 AND 30";
  ZV_ASSERT_OK_AND_ASSIGN(ResultSet a, scan_.ExecuteSql(q));
  ZV_ASSERT_OK_AND_ASSIGN(ResultSet b, roaring_.ExecuteSql(q));
  EXPECT_EQ(a.rows[0][0], b.rows[0][0]);
  // In [20,30]: chair/US 20,30; chair/UK 30,20; desk/US 30; desk/UK 25;
  // stapler/US 21.
  EXPECT_EQ(a.rows[0][0], Value::Int(7));
}

TEST_F(EngineTest, LimitApplies) {
  const char* q = "SELECT year, SUM(sales) FROM sales GROUP BY year ORDER BY "
                  "year LIMIT 2";
  ZV_ASSERT_OK_AND_ASSIGN(ResultSet rs, scan_.ExecuteSql(q));
  EXPECT_EQ(rs.num_rows(), 2u);
}

TEST_F(EngineTest, OrderByDescending) {
  const char* q =
      "SELECT year, SUM(sales) FROM sales GROUP BY year ORDER BY year DESC";
  ZV_ASSERT_OK_AND_ASSIGN(ResultSet rs, roaring_.ExecuteSql(q));
  EXPECT_EQ(rs.rows[0][0], Value::Int(2016));
}

TEST_F(EngineTest, UnknownColumnFails) {
  EXPECT_FALSE(scan_.ExecuteSql("SELECT nope FROM sales").ok());
  EXPECT_FALSE(
      scan_.ExecuteSql("SELECT year FROM sales WHERE nope = 1").ok());
  EXPECT_FALSE(roaring_.ExecuteSql("SELECT nope FROM sales").ok());
}

TEST_F(EngineTest, UnknownTableFails) {
  EXPECT_FALSE(scan_.ExecuteSql("SELECT a FROM missing").ok());
}

TEST_F(EngineTest, BareColumnMustBeGrouped) {
  EXPECT_FALSE(
      scan_.ExecuteSql("SELECT product, SUM(sales) FROM sales GROUP BY year")
          .ok());
}

TEST_F(EngineTest, CountersTrackQueriesAndRequests) {
  scan_.ResetCounters();
  ZV_ASSERT_OK(scan_.ExecuteSql("SELECT COUNT(*) FROM sales").status());
  ZV_ASSERT_OK(scan_.ExecuteSql("SELECT COUNT(*) FROM sales").status());
  EXPECT_EQ(scan_.queries_executed(), 2u);
  EXPECT_EQ(scan_.requests_made(), 2u);

  scan_.ResetCounters();
  std::vector<sql::SelectStatement> batch;
  for (int i = 0; i < 5; ++i) {
    ZV_ASSERT_OK_AND_ASSIGN(auto st,
                            sql::ParseSelect("SELECT COUNT(*) FROM sales"));
    batch.push_back(std::move(st));
  }
  auto results = scan_.ExecuteBatch(batch);
  for (auto& r : results) ZV_EXPECT_OK(r.status());
  EXPECT_EQ(scan_.queries_executed(), 5u);
  EXPECT_EQ(scan_.requests_made(), 1u);
}

TEST_F(EngineTest, RoaringIndexBytesNonZero) {
  EXPECT_GT(roaring_.IndexBytes("sales"), 0u);
  EXPECT_EQ(roaring_.IndexBytes("missing"), 0u);
}

// --- randomized equivalence: both backends must agree exactly ---------------

TEST(EngineEquivalenceTest, RandomQueriesAgree) {
  SalesDataOptions opts;
  opts.num_rows = 20000;
  opts.num_products = 20;
  auto table = MakeSalesTable(opts);
  ScanDatabase scan;
  RoaringDatabase roaring;
  ZV_ASSERT_OK(scan.RegisterTable(table));
  ZV_ASSERT_OK(roaring.RegisterTable(table));

  Rng rng(123);
  const std::vector<std::string> group_cols = {"product", "year", "month",
                                               "country", "category"};
  const std::vector<std::string> measures = {"sales", "profit", "revenue"};
  for (int trial = 0; trial < 30; ++trial) {
    const std::string z = group_cols[rng.Uniform(group_cols.size())];
    std::string x = group_cols[rng.Uniform(group_cols.size())];
    if (x == z) x = "year";
    const std::string y = measures[rng.Uniform(measures.size())];
    std::string where;
    switch (rng.Uniform(4)) {
      case 0:
        where = " WHERE country = 'US'";
        break;
      case 1:
        where = " WHERE country != 'UK' AND size = 'small'";
        break;
      case 2:
        where = " WHERE sales > 100";
        break;
      default:
        break;
    }
    const std::string q = "SELECT " + x + ", SUM(" + y + "), " + z +
                          " FROM sales" + where + " GROUP BY " + x + ", " + z +
                          " ORDER BY " + z + ", " + x;
    ZV_ASSERT_OK_AND_ASSIGN(ResultSet a, scan.ExecuteSql(q));
    ZV_ASSERT_OK_AND_ASSIGN(ResultSet b, roaring.ExecuteSql(q));
    ASSERT_EQ(a.num_rows(), b.num_rows()) << q;
    for (size_t i = 0; i < a.num_rows(); ++i) {
      ASSERT_EQ(a.rows[i].size(), b.rows[i].size());
      for (size_t j = 0; j < a.rows[i].size(); ++j) {
        if (a.rows[i][j].is_numeric()) {
          EXPECT_NEAR(a.rows[i][j].AsDouble(), b.rows[i][j].AsDouble(),
                      1e-6 * (1 + std::abs(a.rows[i][j].AsDouble())))
              << q;
        } else {
          EXPECT_EQ(a.rows[i][j], b.rows[i][j]) << q;
        }
      }
    }
  }
}

}  // namespace
}  // namespace zv
