#include <gtest/gtest.h>

#include "sql/ast.h"
#include "sql/parser.h"
#include "tests/test_util.h"

namespace zv::sql {
namespace {

TEST(SqlParserTest, SimpleSelect) {
  ZV_ASSERT_OK_AND_ASSIGN(SelectStatement st,
                          ParseSelect("SELECT year, sales FROM t"));
  ASSERT_EQ(st.items.size(), 2u);
  EXPECT_EQ(st.items[0].column, "year");
  EXPECT_FALSE(st.items[0].is_aggregate());
  EXPECT_EQ(st.table, "t");
  EXPECT_EQ(st.where, nullptr);
}

TEST(SqlParserTest, Aggregates) {
  ZV_ASSERT_OK_AND_ASSIGN(
      SelectStatement st,
      ParseSelect("SELECT year, SUM(sales), COUNT(*), AVG(profit) FROM t "
                  "GROUP BY year"));
  EXPECT_EQ(st.items[1].agg, AggFunc::kSum);
  EXPECT_EQ(st.items[2].agg, AggFunc::kCount);
  EXPECT_EQ(st.items[2].column, "*");
  EXPECT_EQ(st.items[3].agg, AggFunc::kAvg);
  EXPECT_EQ(st.group_by, (std::vector<std::string>{"year"}));
}

TEST(SqlParserTest, WhereTree) {
  ZV_ASSERT_OK_AND_ASSIGN(
      SelectStatement st,
      ParseSelect("SELECT a FROM t WHERE x = 'u' AND (y > 3 OR z != 4)"));
  ASSERT_NE(st.where, nullptr);
  EXPECT_EQ(st.where->kind, Expr::Kind::kAnd);
  ASSERT_EQ(st.where->children.size(), 2u);
  EXPECT_EQ(st.where->children[1]->kind, Expr::Kind::kOr);
}

TEST(SqlParserTest, InBetweenLike) {
  ZV_ASSERT_OK_AND_ASSIGN(
      SelectStatement st,
      ParseSelect("SELECT a FROM t WHERE p IN ('x','y') AND w BETWEEN 2 AND 5 "
                  "AND zip LIKE '02%'"));
  ASSERT_EQ(st.where->children.size(), 3u);
  EXPECT_EQ(st.where->children[0]->kind, Expr::Kind::kIn);
  EXPECT_EQ(st.where->children[0]->values.size(), 2u);
  EXPECT_EQ(st.where->children[1]->kind, Expr::Kind::kBetween);
  EXPECT_EQ(st.where->children[2]->kind, Expr::Kind::kLike);
}

TEST(SqlParserTest, NotIn) {
  ZV_ASSERT_OK_AND_ASSIGN(
      SelectStatement st, ParseSelect("SELECT a FROM t WHERE p NOT IN (1,2)"));
  EXPECT_EQ(st.where->kind, Expr::Kind::kNot);
  EXPECT_EQ(st.where->children[0]->kind, Expr::Kind::kIn);
}

TEST(SqlParserTest, OrderLimit) {
  ZV_ASSERT_OK_AND_ASSIGN(
      SelectStatement st,
      ParseSelect("SELECT a, b FROM t ORDER BY a DESC, b LIMIT 7"));
  ASSERT_EQ(st.order_by.size(), 2u);
  EXPECT_TRUE(st.order_by[0].descending);
  EXPECT_FALSE(st.order_by[1].descending);
  EXPECT_EQ(st.limit, 7);
}

TEST(SqlParserTest, NegativeNumbers) {
  ZV_ASSERT_OK_AND_ASSIGN(SelectStatement st,
                          ParseSelect("SELECT a FROM t WHERE d > -3.5"));
  EXPECT_DOUBLE_EQ(st.where->value.AsDouble(), -3.5);
}

TEST(SqlParserTest, QuotedStringEscapes) {
  ZV_ASSERT_OK_AND_ASSIGN(
      SelectStatement st, ParseSelect("SELECT a FROM t WHERE p = 'o''brien'"));
  EXPECT_EQ(st.where->value.AsString(), "o'brien");
}

TEST(SqlParserTest, CaseInsensitiveKeywords) {
  ZV_EXPECT_OK(ParseSelect("select a from t where b = 1 group by a "
                           "order by a limit 5")
                   .status());
}

TEST(SqlParserTest, Errors) {
  EXPECT_FALSE(ParseSelect("SELECT FROM t").ok());
  EXPECT_FALSE(ParseSelect("SELECT a").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t WHERE").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t LIMIT x").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t extra junk").ok());
  EXPECT_FALSE(ParseSelect("SELECT SUM(*) FROM t").ok());
}

TEST(SqlParserTest, RoundTripThroughToSql) {
  const char* queries[] = {
      "SELECT year, SUM(sales) FROM sales WHERE location = 'US' GROUP BY "
      "year ORDER BY year",
      "SELECT a FROM t WHERE p IN ('x', 'y') AND w BETWEEN 2 AND 5",
      "SELECT a, b FROM t WHERE (a = 1 AND b = 2) OR c != 3 ORDER BY a DESC "
      "LIMIT 10",
  };
  for (const char* q : queries) {
    ZV_ASSERT_OK_AND_ASSIGN(SelectStatement st, ParseSelect(q));
    const std::string rendered = st.ToSql();
    ZV_ASSERT_OK_AND_ASSIGN(SelectStatement again, ParseSelect(rendered));
    EXPECT_EQ(again.ToSql(), rendered) << q;
  }
}

TEST(SqlParserTest, BareWhereExpr) {
  ZV_ASSERT_OK_AND_ASSIGN(auto e,
                          ParseWhereExpr("product = 'chair' AND year = 2015"));
  EXPECT_EQ(e->kind, Expr::Kind::kAnd);
}

TEST(SqlAstTest, CloneIsDeep) {
  ZV_ASSERT_OK_AND_ASSIGN(auto e, ParseWhereExpr("a = 1 OR (b = 2 AND c = 3)"));
  auto clone = e->Clone();
  EXPECT_EQ(clone->ToSql(), e->ToSql());
  e->children[0]->value = Value::Int(99);
  EXPECT_NE(clone->ToSql(), e->ToSql());
}

TEST(SqlAstTest, StatementCopyIsDeep) {
  ZV_ASSERT_OK_AND_ASSIGN(SelectStatement st,
                          ParseSelect("SELECT a FROM t WHERE a = 1"));
  SelectStatement copy = st;
  st.where->value = Value::Int(2);
  EXPECT_NE(copy.ToSql(), st.ToSql());
}

}  // namespace
}  // namespace zv::sql
