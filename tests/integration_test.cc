/// \file integration_test.cc
/// \brief End-to-end runs of the paper's example ZQL queries (Chapters 2–3
/// and 5) against the synthetic sales dataset, on both backends and all
/// optimization levels.

#include <gtest/gtest.h>

#include "engine/roaring_db.h"
#include "engine/scan_db.h"
#include "tasks/primitives.h"
#include "tests/test_util.h"
#include "workload/datasets.h"
#include "zql/executor.h"

namespace zv {
namespace {

using zql::OptLevel;
using zql::ZqlExecutor;
using zql::ZqlOptions;
using zql::ZqlResult;

class PaperQueriesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SalesDataOptions opts;
    opts.num_rows = 40000;
    opts.num_products = 25;
    sales_ = MakeSalesTable(opts);
    ZV_ASSERT_OK(db_.RegisterTable(sales_));
  }

  ZqlResult Run(const std::string& text, ZqlOptions opts = {}) {
    ZqlExecutor exec(&db_, "sales", std::move(opts));
    auto r = exec.ExecuteText(text);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? std::move(r).value() : ZqlResult{};
  }

  std::shared_ptr<Table> sales_;
  ScanDatabase db_;
};

// Table 2.1: set of sales-over-year bar charts per product sold in the US.
TEST_F(PaperQueriesTest, Table2_1) {
  ZqlResult r = Run(
      "*f1 | 'year' | 'sales' | v1 <- 'product'.* | location='US' | "
      "bar.(y=agg('sum')) |");
  ASSERT_EQ(r.outputs.size(), 1u);
  EXPECT_EQ(r.outputs[0].visuals.size(), 25u);
  for (const auto& v : r.outputs[0].visuals) {
    EXPECT_EQ(v.x_attr, "year");
    EXPECT_EQ(v.spec.chart, ChartType::kBar);
    EXPECT_FALSE(v.xs.empty());
  }
}

// Table 2.2: product most similar to a user-drawn rising trend.
TEST_F(PaperQueriesTest, Table2_2) {
  Visualization drawn;
  drawn.x_attr = "year";
  drawn.y_attr = "sales";
  for (int y = 2010; y <= 2019; ++y) {
    drawn.xs.push_back(Value::Int(y));
  }
  drawn.series = {{"sales", {}}};
  for (int i = 0; i < 10; ++i) {
    drawn.series[0].ys.push_back(static_cast<double>(i));
  }
  ZqlExecutor exec(&db_, "sales");
  exec.SetUserInput("f1", drawn);
  ZV_ASSERT_OK_AND_ASSIGN(
      ZqlResult r,
      exec.ExecuteText(
          "-f1 | | | | | |\n"
          "f2 | 'year' | 'sales' | v1 <- 'product'.* | | | v2 <- "
          "argmin_v1[k=1] D(f1, f2)\n"
          "*f3 | 'year' | 'sales' | v2 | | |"));
  ASSERT_EQ(r.outputs[0].visuals.size(), 1u);
  // The selected product's sales trend must actually be rising.
  EXPECT_GT(Trend(r.outputs[0].visuals[0]), 0.3);
}

// Table 2.3 / 5.1: profit for products rising in US but falling in UK.
TEST_F(PaperQueriesTest, Table2_3) {
  ZqlResult r = Run(
      "f1 | 'year' | 'sales' | v1 <- 'product'.* | location='US' | | v2 <- "
      "argany_v1[t > 0] T(f1)\n"
      "f2 | 'year' | 'sales' | v1 | location='UK' | | v3 <- argany_v1[t < 0] "
      "T(f2)\n"
      "*f3 | 'year' | 'profit' | v4 <- (v2.range & v3.range) | | |");
  ASSERT_EQ(r.outputs.size(), 1u);
  // The generator plants divergent products; at least one must be found.
  EXPECT_GE(r.outputs[0].visuals.size(), 1u);
  EXPECT_EQ(r.outputs[0].visuals[0].y_attr, "profit");
}

// Table 3.13: top-10 products most similar to the first product.
TEST_F(PaperQueriesTest, Table3_13) {
  ZqlResult r = Run(
      "f1 | 'year' | 'sales' | 'product'.'product0' | | |\n"
      "f2 | 'year' | 'sales' | v1 <- 'product'.(* - 'product0') | | | v2 <- "
      "argmin_v1[k=10] D(f1, f2)\n"
      "*f3 | 'year' | 'sales' | v2 | | |");
  EXPECT_EQ(r.outputs[0].visuals.size(), 10u);
  for (const auto& v : r.outputs[0].visuals) {
    EXPECT_NE(v.slices[0].value, Value::Str("product0"));
  }
}

// Table 3.17: top-k products where sales and profit trends differ most,
// with both visualizations output.
TEST_F(PaperQueriesTest, Table3_17) {
  ZqlResult r = Run(
      "f1 | 'year' | 'sales' | v1 <- 'product'.* | | |\n"
      "f2 | 'year' | 'profit' | v1 | | | v2 <- argmax_v1[k=5] D(f1, f2)\n"
      "*f3 | 'year' | 'sales' | v2 | | |\n"
      "*f4 | 'year' | 'profit' | v2 | | |");
  ASSERT_EQ(r.outputs.size(), 2u);
  EXPECT_EQ(r.outputs[0].visuals.size(), 5u);
  EXPECT_EQ(r.outputs[1].visuals.size(), 5u);
  // Same products in the same order on both outputs (§3.7 consistency).
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(r.outputs[0].visuals[i].slices[0].value,
              r.outputs[1].visuals[i].slices[0].value);
  }
}

// Table 3.18: profit over years for top-10 products by sales trend slope,
// fetched through a .range constraint.
TEST_F(PaperQueriesTest, Table3_18) {
  ZqlResult r = Run(
      "f1 | 'year' | 'sales' | v1 <- 'product'.* | | | v2 <- "
      "argmax_v1[k=10] T(f1)\n"
      "*f2 | 'year' | 'profit' | | product IN (v2.range) | |");
  ASSERT_EQ(r.outputs[0].visuals.size(), 1u);
  EXPECT_EQ(r.outputs[0].visuals[0].y_attr, "profit");
  EXPECT_FALSE(r.outputs[0].visuals[0].xs.empty());
}

// Table 3.20: outliers via two levels of iteration.
TEST_F(PaperQueriesTest, Table3_20) {
  ZqlResult r = Run(
      "f1 | 'year' | 'sales' | v1 <- 'product'.* | | | v2 <- R(5, v1, f1)\n"
      "f2 | 'year' | 'sales' | v2 | | |\n"
      "f3 | 'year' | 'sales' | v1 | | | v3 <- argmax_v1[k=3] min_v2 D(f3, "
      "f2)\n"
      "*f4 | 'year' | 'sales' | v3 | | |");
  EXPECT_EQ(r.outputs[0].visuals.size(), 3u);
}

// Table 3.22: representative sales visualizations among profit-similar
// products.
TEST_F(PaperQueriesTest, Table3_22) {
  ZqlResult r = Run(
      "f1 | 'year' | 'profit' | 'product'.'product1' | | bar.(y=agg('sum')) "
      "|\n"
      "f2 | 'year' | 'profit' | v1 <- 'product'.(* - 'product1') | | "
      "bar.(y=agg('sum')) | v2 <- argmin_v1[k=12] D(f1, f2)\n"
      "f3 | 'year' | 'sales' | v2 | | bar.(y=agg('sum')) | v3 <- R(4, v2, "
      "f3)\n"
      "*f4 | 'year' | 'sales' | v3 | | bar.(y=agg('sum')) |");
  EXPECT_LE(r.outputs[0].visuals.size(), 4u);
  EXPECT_GE(r.outputs[0].visuals.size(), 1u);
}

// Table 3.23: discrepancy between monthly sales and profit in one year.
TEST_F(PaperQueriesTest, Table3_23) {
  ZqlResult r = Run(
      "f1 | 'month' | 'profit' | v1 <- 'product'.* | year=2015 | "
      "bar.(y=agg('sum')) |\n"
      "f2 | 'month' | 'sales' | v1 | year=2015 | bar.(y=agg('sum')) | v2 <- "
      "argmax_v1[k=10] D(f1, f2)\n"
      "*f3 | 'month' | y1 <- {'sales', 'profit'} | v2 | year=2015 | "
      "bar.(y=agg('sum')) |");
  // 10 products x 2 y-attributes.
  EXPECT_EQ(r.outputs[0].visuals.size(), 20u);
}

// Table 3.24-style: named attribute set M for varying y axes.
TEST_F(PaperQueriesTest, Table3_24) {
  ZqlOptions opts;
  opts.named_sets.attr_sets["M"] = {"sales", "profit", "revenue"};
  ZqlResult r = Run(
      "f1 | 'year' | 'sales' | v1 <- 'product'.* | | | v2 <- R(1, v1, f1)\n"
      "f2 | 'year' | y1 <- M | v2 | | | v3 <- argmax_v1[k=1] T(f1)\n"
      "f3 | 'year' | y1 | v3 | | | y2,v4,v5 <- argmax_y1,v2,v3[k=2] D(f2, "
      "f3)\n"
      "*f4 | 'year' | y2 | v6 <- (v4.range | v5.range) | | |",
      opts);
  ASSERT_GE(r.outputs[0].visuals.size(), 1u);
}

// Table 5.2: biggest sales change between two years, by location.
TEST_F(PaperQueriesTest, Table5_2) {
  ZqlOptions opts;
  std::vector<Value> products;
  for (int i = 0; i < 10; ++i) {
    products.push_back(Value::Str("product" + std::to_string(i)));
  }
  opts.named_sets.value_sets["P"] = {"product", products};
  ZqlResult r = Run(
      "f1 | 'country' | 'sales' | v1 <- P | year=2010 | bar.(y=agg('sum')) "
      "|\n"
      "f2 | 'country' | 'sales' | v1 | year=2015 | bar.(y=agg('sum')) | v2 "
      "<- argmax_v1[k=4] D(f1, f2)\n"
      "*f3 | 'country' | 'profit' | v2 | year=2010 | bar.(y=agg('sum')) |\n"
      "*f4 | 'country' | 'profit' | v2 | year=2015 | bar.(y=agg('sum')) |",
      opts);
  ASSERT_EQ(r.outputs.size(), 2u);
  EXPECT_EQ(r.outputs[0].visuals.size(), 4u);
  EXPECT_EQ(r.outputs[1].visuals.size(), 4u);
}

// The paper's optimization claims, measured: NoOpt issues one query per
// visualization; Intra-Line one per row; Inter-Task fewer requests than
// Intra-Line on Table 5.1.
TEST_F(PaperQueriesTest, OptimizationCounters) {
  const char* text =
      "f1 | 'year' | 'sales' | v1 <- 'product'.* | location='US' | | v2 <- "
      "argany_v1[t > 0] T(f1)\n"
      "f2 | 'year' | 'sales' | v1 | location='UK' | | v3 <- argany_v1[t < 0] "
      "T(f2)\n"
      "*f3 | 'year' | 'profit' | v4 <- (v2.range | v3.range) | | |";

  ZqlOptions noopt;
  noopt.optimization = OptLevel::kNoOpt;
  ZqlResult rn = Run(text, noopt);
  // One query per visualization (the §5.1 naive compiler): 25 products x 2
  // rows + one query per union-filtered product in the final row; every
  // query is its own request.
  const uint64_t final_count = rn.outputs[0].visuals.size();
  EXPECT_EQ(rn.stats.sql_queries, 50u + final_count);
  EXPECT_EQ(rn.stats.sql_requests, rn.stats.sql_queries);

  ZqlOptions intra;
  intra.optimization = OptLevel::kIntraLine;
  ZqlResult ri = Run(text, intra);
  EXPECT_EQ(ri.stats.sql_queries, 3u);
  EXPECT_EQ(ri.stats.sql_requests, 3u);

  ZqlOptions inter;
  inter.optimization = OptLevel::kInterTask;
  ZqlResult rt = Run(text, inter);
  EXPECT_EQ(rt.stats.sql_queries, 3u);
  // Rows 1 and 2 are independent (Figure 5.1) and batch into one request.
  EXPECT_EQ(rt.stats.sql_requests, 2u);
}

// Backend equivalence on a full paper query.
TEST_F(PaperQueriesTest, BackendsAgreeOnTable2_3) {
  RoaringDatabase roaring;
  ZV_ASSERT_OK(roaring.RegisterTable(sales_));
  const char* text =
      "f1 | 'year' | 'sales' | v1 <- 'product'.* | location='US' | | v2 <- "
      "argany_v1[t > 0] T(f1)\n"
      "f2 | 'year' | 'sales' | v1 | location='UK' | | v3 <- argany_v1[t < 0] "
      "T(f2)\n"
      "*f3 | 'year' | 'profit' | v4 <- (v2.range & v3.range) | | |";
  ZqlExecutor a(&db_, "sales"), b(&roaring, "sales");
  ZV_ASSERT_OK_AND_ASSIGN(ZqlResult ra, a.ExecuteText(text));
  ZV_ASSERT_OK_AND_ASSIGN(ZqlResult rb, b.ExecuteText(text));
  ASSERT_EQ(ra.outputs[0].visuals.size(), rb.outputs[0].visuals.size());
  for (size_t i = 0; i < ra.outputs[0].visuals.size(); ++i) {
    EXPECT_EQ(ra.outputs[0].visuals[i].series,
              rb.outputs[0].visuals[i].series);
  }
}

}  // namespace
}  // namespace zv
