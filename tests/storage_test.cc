#include <gtest/gtest.h>

#include "storage/table.h"
#include "tests/test_util.h"

namespace zv {
namespace {

TEST(SchemaTest, FindAndNames) {
  Schema s({{"a", ColumnType::kCategorical}, {"b", ColumnType::kDouble}});
  EXPECT_EQ(s.Find("a"), 0);
  EXPECT_EQ(s.Find("b"), 1);
  EXPECT_EQ(s.Find("c"), -1);
  EXPECT_TRUE(s.Has("a"));
  EXPECT_EQ(s.ColumnNames(), (std::vector<std::string>{"a", "b"}));
}

TEST(TableBuilderTest, DictionaryEncoding) {
  Schema s({{"color", ColumnType::kCategorical}});
  TableBuilder b("t", s);
  ZV_ASSERT_OK(b.AddRow({Value::Str("red")}));
  ZV_ASSERT_OK(b.AddRow({Value::Str("blue")}));
  ZV_ASSERT_OK(b.AddRow({Value::Str("red")}));
  auto t = b.Finish();
  EXPECT_EQ(t->num_rows(), 3u);
  EXPECT_EQ(t->DictSize(0), 2u);
  EXPECT_EQ(t->Code(0, 0), t->Code(2, 0));
  EXPECT_NE(t->Code(0, 0), t->Code(1, 0));
  EXPECT_EQ(t->DictValue(0, t->Code(1, 0)), Value::Str("blue"));
  EXPECT_EQ(t->LookupCode(0, Value::Str("red")), t->Code(0, 0));
  EXPECT_EQ(t->LookupCode(0, Value::Str("green")), -1);
}

TEST(TableBuilderTest, IntValuedDictionary) {
  Schema s({{"year", ColumnType::kCategorical}});
  TableBuilder b("t", s);
  ZV_ASSERT_OK(b.AddRow({Value::Int(2015)}));
  ZV_ASSERT_OK(b.AddRow({Value::Int(2016)}));
  auto t = b.Finish();
  EXPECT_EQ(t->ValueAt(0, 0), Value::Int(2015));
  EXPECT_DOUBLE_EQ(t->NumericAt(1, 0), 2016.0);
}

TEST(TableBuilderTest, TypeChecking) {
  Schema s({{"m", ColumnType::kDouble}});
  TableBuilder b("t", s);
  EXPECT_FALSE(b.AddRow({Value::Str("oops")}).ok());
  ZV_EXPECT_OK(b.AddRow({Value::Int(3)}));  // ints coerce to double
  auto t = b.Finish();
  EXPECT_DOUBLE_EQ(t->DoubleColumn(0)[0], 3.0);
}

TEST(TableBuilderTest, ArityChecking) {
  Schema s({{"a", ColumnType::kCategorical}, {"b", ColumnType::kDouble}});
  TableBuilder b("t", s);
  EXPECT_FALSE(b.AddRow({Value::Str("x")}).ok());
}

TEST(TableTest, ValueAtAllTypes) {
  auto t = testing::MakeTinySales();
  EXPECT_EQ(t->ValueAt(0, 0), Value::Int(2014));
  EXPECT_EQ(t->ValueAt(0, 1), Value::Str("chair"));
  EXPECT_EQ(t->ValueAt(0, 3), Value::Double(10));
  EXPECT_GT(t->MemoryBytes(), 0u);
}

TEST(CatalogTest, AddGetDuplicate) {
  Catalog c;
  ZV_ASSERT_OK(c.AddTable(testing::MakeTinySales()));
  ZV_ASSERT_OK_AND_ASSIGN(auto t, c.GetTable("sales"));
  EXPECT_EQ(t->name(), "sales");
  EXPECT_FALSE(c.AddTable(testing::MakeTinySales()).ok());
  EXPECT_FALSE(c.GetTable("nope").ok());
  EXPECT_EQ(c.TableNames().size(), 1u);
}

}  // namespace
}  // namespace zv
