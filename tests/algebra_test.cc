#include <gtest/gtest.h>

#include "algebra/operators.h"
#include "algebra/ordered_bag.h"
#include "algebra/visual.h"
#include "tasks/primitives.h"
#include "tests/test_util.h"

namespace zv::algebra {
namespace {

using Bag = OrderedBag<int>;

// --- ordered bags (§4.1) ------------------------------------------------------

TEST(OrderedBagTest, IndexingIsOneBased) {
  Bag b({10, 20, 30});
  EXPECT_EQ(b.At(1), 10);
  EXPECT_EQ(b.At(3), 30);
}

TEST(OrderedBagTest, SliceInclusive) {
  Bag b({1, 2, 3, 4, 5});
  EXPECT_EQ(b.Slice(2, 4), Bag({2, 3, 4}));
  EXPECT_EQ(b.Slice(1, 99), b);
  EXPECT_TRUE(b.Slice(9, 10).empty());
  EXPECT_EQ(b.Limit(2), Bag({1, 2}));
}

TEST(OrderedBagTest, UnionIsConcatenation) {
  EXPECT_EQ(Bag::Union(Bag({1, 2}), Bag({2, 3})), Bag({1, 2, 2, 3}));
}

TEST(OrderedBagTest, DifferenceRemovesAllCopies) {
  EXPECT_EQ(Bag::Difference(Bag({1, 2, 1, 3}), Bag({1})), Bag({2, 3}));
}

TEST(OrderedBagTest, IntersectionPreservesLeftOrder) {
  EXPECT_EQ(Bag::Intersection(Bag({3, 1, 2, 3}), Bag({3, 2})),
            Bag({3, 2, 3}));
}

TEST(OrderedBagTest, DedupKeepsFirstOccurrence) {
  EXPECT_EQ(Bag({2, 1, 2, 3, 1}).Dedup(), Bag({2, 1, 3}));
}

TEST(OrderedBagTest, CrossOrdering) {
  auto crossed = Bag::Cross(Bag({1, 2}), OrderedBag<int>({10, 20}),
                            [](int a, int b) { return a * 100 + b; });
  EXPECT_EQ(crossed, OrderedBag<int>({110, 120, 210, 220}));
}

// --- visual universe & operators ----------------------------------------------

class AlgebraTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = zv::testing::MakeTinySales();
    auto u = MakeVisualUniverse(table_, {"year"}, {"sales", "profit"});
    ZV_ASSERT_OK(u.status());
    universe_ = std::move(u).value();
    lib_ = TaskLibrary::Default();
  }

  /// σv selecting year=* ∧ product≠* ∧ location=loc ∧ sales=* ∧ profit=*,
  /// X=year ∧ Y=y — i.e. "one viz per product at location loc" (the paper's
  /// running example, Table 4.3).
  VisualGroup PerProduct(const std::string& y, const std::string& loc) {
    std::vector<std::unique_ptr<VPredicate>> conj;
    conj.push_back(VPredicate::XEquals("year"));
    conj.push_back(VPredicate::YEquals(y));
    conj.push_back(VPredicate::AttrIsStar(universe_.FindAttr("year")));
    conj.push_back(
        VPredicate::AttrIsStar(universe_.FindAttr("product"), /*negated=*/true));
    conj.push_back(VPredicate::AttrEquals(universe_.FindAttr("location"),
                                          Value::Str(loc)));
    conj.push_back(VPredicate::AttrIsStar(universe_.FindAttr("sales")));
    conj.push_back(VPredicate::AttrIsStar(universe_.FindAttr("profit")));
    auto theta = VPredicate::And(std::move(conj));
    return SigmaV(universe_, *theta);
  }

  std::shared_ptr<Table> table_;
  VisualGroup universe_;
  TaskLibrary lib_;
};

TEST_F(AlgebraTest, UniverseShape) {
  // |V| = |X| * |Y| * prod(|dom|+1) — year: 3+1, product: 3+1, location:
  // 2+1, sales: 12+1, profit: 9+1 distinct values.
  size_t sales_distinct = 0, profit_distinct = 0;
  {
    std::set<double> s, p;
    for (size_t r = 0; r < table_->num_rows(); ++r) {
      s.insert(table_->NumericAt(r, 3));
      p.insert(table_->NumericAt(r, 4));
    }
    sales_distinct = s.size();
    profit_distinct = p.size();
  }
  const size_t expect = 1 * 2 * (3 + 1) * (3 + 1) * (2 + 1) *
                        (sales_distinct + 1) * (profit_distinct + 1);
  EXPECT_EQ(universe_.size(), expect);
}

TEST_F(AlgebraTest, SigmaSelectsPerProductGroup) {
  VisualGroup v = PerProduct("sales", "US");
  ASSERT_EQ(v.size(), 3u);  // chair, desk, stapler
  for (const VisualSource& src : v.sources) {
    EXPECT_EQ(src.x, "year");
    EXPECT_EQ(src.y, "sales");
    EXPECT_FALSE(src.attrs[1].star);  // product bound
    EXPECT_EQ(src.attrs[2].value, Value::Str("US"));
  }
}

TEST_F(AlgebraTest, RenderAggregatesBySum) {
  VisualGroup v = PerProduct("sales", "US");
  ZV_ASSERT_OK_AND_ASSIGN(Visualization viz,
                          RenderVisualSource(v, v.sources[0]));
  EXPECT_EQ(viz.ys(), (std::vector<double>{10, 20, 30}));  // chair/US
}

TEST_F(AlgebraTest, TauSortsByTrend) {
  VisualGroup v = PerProduct("sales", "US");
  ZV_ASSERT_OK_AND_ASSIGN(VisualGroup sorted, TauV(v, lib_.trend));
  // Increasing trend order: desk (falling) first.
  EXPECT_EQ(sorted.sources[0].attrs[1].value, Value::Str("desk"));
  // Reverse via negated functional (τ_{-T}).
  ZV_ASSERT_OK_AND_ASSIGN(
      VisualGroup rev,
      TauV(v, [this](const Visualization& f) { return -lib_.trend(f); }));
  EXPECT_EQ(rev.sources[2].attrs[1].value, Value::Str("desk"));
}

TEST_F(AlgebraTest, MuLimitsAndSlices) {
  VisualGroup v = PerProduct("sales", "US");
  EXPECT_EQ(MuV(v, 2).size(), 2u);
  VisualGroup sliced = MuV(v, 2, 3);
  ASSERT_EQ(sliced.size(), 2u);
  EXPECT_EQ(sliced.sources[0], v.sources[1]);
}

TEST_F(AlgebraTest, DeltaRemovesDuplicates) {
  VisualGroup v = PerProduct("sales", "US");
  ZV_ASSERT_OK_AND_ASSIGN(VisualGroup doubled, UnionV(v, v));
  EXPECT_EQ(doubled.size(), 6u);
  EXPECT_EQ(DeltaV(doubled).size(), 3u);
}

TEST_F(AlgebraTest, ZetaPicksRepresentatives) {
  VisualGroup v = PerProduct("sales", "US");
  ZV_ASSERT_OK_AND_ASSIGN(
      VisualGroup reps,
      ZetaV(v, lib_.representatives, 2));
  EXPECT_LE(reps.size(), 2u);
  EXPECT_GE(reps.size(), 1u);
}

TEST_F(AlgebraTest, UnionDiffIntersect) {
  VisualGroup us = PerProduct("sales", "US");
  VisualGroup uk = PerProduct("sales", "UK");
  ZV_ASSERT_OK_AND_ASSIGN(VisualGroup both, UnionV(us, uk));
  EXPECT_EQ(both.size(), us.size() + uk.size());
  ZV_ASSERT_OK_AND_ASSIGN(VisualGroup diff, DiffV(both, uk));
  EXPECT_EQ(diff.size(), us.size());
  ZV_ASSERT_OK_AND_ASSIGN(VisualGroup inter, IntersectV(both, us));
  EXPECT_EQ(inter.size(), us.size());
}

TEST_F(AlgebraTest, BetaSwapsY) {
  VisualGroup sales = PerProduct("sales", "US");
  VisualGroup profit = PerProduct("profit", "US");
  // βY(sales, profit[1:1]): every source now plots profit.
  ZV_ASSERT_OK_AND_ASSIGN(VisualGroup swapped,
                          BetaV(sales, MuV(profit, 1), SwapTarget::Y()));
  ASSERT_EQ(swapped.size(), 3u);
  for (const auto& src : swapped.sources) EXPECT_EQ(src.y, "profit");
}

TEST_F(AlgebraTest, BetaSwapsAttributeViaCross) {
  VisualGroup us = PerProduct("sales", "US");
  VisualGroup uk = PerProduct("sales", "UK");
  const int loc = universe_.FindAttr("location");
  ZV_ASSERT_OK_AND_ASSIGN(
      VisualGroup swapped, BetaV(MuV(us, 1), uk, SwapTarget::Attr(loc)));
  // 1 x |uk| cross product, all with location=UK.
  EXPECT_EQ(swapped.size(), uk.size());
  for (const auto& src : swapped.sources) {
    EXPECT_EQ(src.attrs[static_cast<size_t>(loc)].value, Value::Str("UK"));
  }
}

TEST_F(AlgebraTest, EtaSortsByDistanceToReference) {
  VisualGroup v = PerProduct("sales", "US");
  // Reference: the stapler (rising 11,21,32).
  VisualGroup ref = MuV(v, 3, 3);
  ASSERT_EQ(ref.size(), 1u);
  ZV_ASSERT_OK_AND_ASSIGN(VisualGroup sorted, EtaV(v, ref, lib_.distance));
  // stapler itself first (distance 0), chair (same shape) second.
  EXPECT_EQ(sorted.sources[0].attrs[1].value, Value::Str("stapler"));
  EXPECT_EQ(sorted.sources[1].attrs[1].value, Value::Str("chair"));
}

TEST_F(AlgebraTest, EtaRequiresSingleton) {
  VisualGroup v = PerProduct("sales", "US");
  EXPECT_FALSE(EtaV(v, v, lib_.distance).ok());
}

TEST_F(AlgebraTest, PhiSortsByPairwiseDistance) {
  VisualGroup us = PerProduct("sales", "US");
  // Compare each product's US sales against its own profit series.
  VisualGroup profit = PerProduct("profit", "US");
  const int prod = universe_.FindAttr("product");
  ZV_ASSERT_OK_AND_ASSIGN(
      VisualGroup sorted,
      PhiV(us, profit, lib_.distance, {SwapTarget::Attr(prod)}));
  ASSERT_EQ(sorted.size(), 3u);
  // chair US sales (10,20,30) vs profit (5,6,7): both rising -> small D.
  // desk US sales falls while profit falls too. stapler rising/rising.
  // All should be finite; ordering deterministic.
  ZV_ASSERT_OK_AND_ASSIGN(
      VisualGroup again,
      PhiV(us, profit, lib_.distance, {SwapTarget::Attr(prod)}));
  EXPECT_EQ(sorted.sources.items(), again.sources.items());
}

TEST_F(AlgebraTest, PhiRejectsNonSingletonKeys) {
  VisualGroup us = PerProduct("sales", "US");
  ZV_ASSERT_OK_AND_ASSIGN(VisualGroup doubled, UnionV(us, us));
  const int prod = universe_.FindAttr("product");
  EXPECT_FALSE(
      PhiV(doubled, us, lib_.distance, {SwapTarget::Attr(prod)}).ok());
}

TEST_F(AlgebraTest, MismatchedSchemasRejected) {
  VisualGroup other = universe_;
  other.attr_names.push_back("extra");
  EXPECT_FALSE(UnionV(universe_, other).ok());
}

}  // namespace
}  // namespace zv::algebra
