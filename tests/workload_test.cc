#include <set>

#include <gtest/gtest.h>

#include "common/stats.h"
#include "tests/test_util.h"
#include "workload/datasets.h"

namespace zv {
namespace {

TEST(SalesDataTest, ShapeAndDeterminism) {
  SalesDataOptions opts;
  opts.num_rows = 5000;
  opts.num_products = 10;
  auto a = MakeSalesTable(opts);
  auto b = MakeSalesTable(opts);
  EXPECT_EQ(a->num_rows(), 5000u);
  EXPECT_EQ(a->schema().num_columns(), 12u);
  EXPECT_EQ(a->DictSize(static_cast<size_t>(a->schema().Find("product"))),
            10u);
  // Determinism: same seed, same data.
  for (size_t r = 0; r < 100; ++r) {
    EXPECT_EQ(a->ValueAt(r, 0), b->ValueAt(r, 0));
    EXPECT_DOUBLE_EQ(a->NumericAt(r, 9), b->NumericAt(r, 9));
  }
  // Different seed, different data.
  opts.seed = 99;
  auto c = MakeSalesTable(opts);
  bool any_diff = false;
  for (size_t r = 0; r < 100; ++r) {
    any_diff |= a->NumericAt(r, 9) != c->NumericAt(r, 9);
  }
  EXPECT_TRUE(any_diff);
}

TEST(SalesDataTest, ContainsUsAndUk) {
  SalesDataOptions opts;
  opts.num_rows = 2000;
  auto t = MakeSalesTable(opts);
  const size_t loc = static_cast<size_t>(t->schema().Find("location"));
  EXPECT_GE(t->LookupCode(loc, Value::Str("US")), 0);
  EXPECT_GE(t->LookupCode(loc, Value::Str("UK")), 0);
}

TEST(SalesDataTest, PlantedDivergenceIsRecoverable) {
  // Some product must have positive US sales trend and negative UK trend.
  SalesDataOptions opts;
  opts.num_rows = 60000;
  opts.num_products = 20;
  opts.divergent_fraction = 0.3;
  auto t = MakeSalesTable(opts);
  const size_t prod = static_cast<size_t>(t->schema().Find("product"));
  const size_t loc = static_cast<size_t>(t->schema().Find("location"));
  const size_t year = static_cast<size_t>(t->schema().Find("year"));
  const size_t sales = static_cast<size_t>(t->schema().Find("sales"));
  const int32_t us = t->LookupCode(loc, Value::Str("US"));
  const int32_t uk = t->LookupCode(loc, Value::Str("UK"));

  int divergent = 0;
  for (size_t p = 0; p < t->DictSize(prod); ++p) {
    // Aggregate sales by year for both locations.
    std::map<int64_t, double> us_series, uk_series;
    for (size_t r = 0; r < t->num_rows(); ++r) {
      if (t->Code(r, prod) != static_cast<int32_t>(p)) continue;
      const int64_t y = t->DictValue(year, t->Code(r, year)).AsInt();
      if (t->Code(r, loc) == us) us_series[y] += t->NumericAt(r, sales);
      if (t->Code(r, loc) == uk) uk_series[y] += t->NumericAt(r, sales);
    }
    auto slope = [](const std::map<int64_t, double>& s) {
      std::vector<double> ys;
      for (const auto& [k, v] : s) ys.push_back(v);
      return FitLine({}, ys).slope;
    };
    if (slope(us_series) > 0 && slope(uk_series) < 0) ++divergent;
  }
  EXPECT_GE(divergent, 1);
}

TEST(CensusDataTest, Shape) {
  CensusDataOptions opts;
  opts.num_rows = 3000;
  auto t = MakeCensusTable(opts);
  EXPECT_EQ(t->num_rows(), 3000u);
  EXPECT_EQ(t->schema().num_columns(), 40u);
  EXPECT_TRUE(t->schema().Has("income"));
  EXPECT_TRUE(t->schema().Has("age"));
  // Varying cardinalities.
  std::set<size_t> sizes;
  for (size_t c = 0; c + 4 < t->schema().num_columns(); ++c) {
    sizes.insert(t->DictSize(c));
  }
  EXPECT_GT(sizes.size(), 3u);
}

TEST(AirlineDataTest, ShapeAndPlantedDelays) {
  AirlineDataOptions opts;
  opts.num_rows = 30000;
  opts.num_airports = 20;
  opts.increasing_delay_fraction = 0.4;
  auto t = MakeAirlineTable(opts);
  EXPECT_EQ(t->schema().num_columns(), 29u);
  EXPECT_TRUE(t->schema().Has("dep_delay"));
  EXPECT_TRUE(t->schema().Has("weather_delay"));
  EXPECT_EQ(t->DictSize(static_cast<size_t>(t->schema().Find("origin"))),
            20u);

  // At least one airport has an increasing average departure delay.
  const size_t origin = static_cast<size_t>(t->schema().Find("origin"));
  const size_t year = static_cast<size_t>(t->schema().Find("year"));
  const size_t delay = static_cast<size_t>(t->schema().Find("dep_delay"));
  int increasing = 0;
  for (size_t a = 0; a < t->DictSize(origin); ++a) {
    std::map<int64_t, std::pair<double, int>> by_year;
    for (size_t r = 0; r < t->num_rows(); ++r) {
      if (t->Code(r, origin) != static_cast<int32_t>(a)) continue;
      const int64_t y = t->DictValue(year, t->Code(r, year)).AsInt();
      by_year[y].first += t->NumericAt(r, delay);
      by_year[y].second += 1;
    }
    std::vector<double> avg;
    for (const auto& [y, sc] : by_year) {
      avg.push_back(sc.second ? sc.first / sc.second : 0);
    }
    if (FitLine({}, avg).slope > 0.3) ++increasing;
  }
  EXPECT_GE(increasing, 2);
}

TEST(HousingDataTest, Shape) {
  HousingDataOptions opts;
  opts.num_rows = 5000;
  auto t = MakeHousingTable(opts);
  EXPECT_EQ(t->schema().num_columns(), 15u);
  EXPECT_TRUE(t->schema().Has("sold_price"));
  EXPECT_TRUE(t->schema().Has("turnover_rate"));
  EXPECT_TRUE(t->schema().Has("foreclosure_rate"));
  // Prices positive.
  const size_t price = static_cast<size_t>(t->schema().Find("sold_price"));
  for (size_t r = 0; r < 200; ++r) {
    EXPECT_GT(t->NumericAt(r, price), 0);
  }
}

}  // namespace
}  // namespace zv
