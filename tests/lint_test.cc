/// \file lint_test.cc
/// \brief In-memory fixtures for every zv-lint rule (tools/zv_lint.h):
/// each rule fires on a minimal offending snippet, each suppression
/// comment silences it, the channel scanner keeps rule text inside
/// strings/comments inert, the layer gate rejects an api -> engine edge
/// while accepting the sanctioned api -> zql edge, the cycle detector
/// reports the minimal include cycle, and the baseline behaves as a
/// ratchet — baselined sites pass, new sites fail, paid-off entries are
/// reported stale.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "tools/zv_lint.h"

namespace zv::lint {
namespace {

SourceFile File(std::string path, std::string content) {
  return SourceFile{std::move(path), std::move(content)};
}

// ---------------------------------------------------------------------------
// Channel scanner
// ---------------------------------------------------------------------------

TEST(ScanSourceTest, SplitsCodeAndCommentChannels) {
  const auto lines = ScanSource("int x = 1;  // trailing note\n");
  ASSERT_EQ(lines.size(), 2u);  // content + the empty line after '\n'
  EXPECT_NE(lines[0].code.find("int x = 1;"), std::string::npos);
  EXPECT_EQ(lines[0].code.find("trailing"), std::string::npos);
  EXPECT_NE(lines[0].comment.find("trailing note"), std::string::npos);
}

TEST(ScanSourceTest, BlanksStringAndCharLiteralBodies) {
  const auto lines =
      ScanSource("auto s = \"steady_clock::now()\"; char c = 'r';\n");
  EXPECT_EQ(lines[0].code.find("steady_clock"), std::string::npos);
  // Delimiters survive so the line still parses as shape.
  EXPECT_NE(lines[0].code.find('"'), std::string::npos);
}

TEST(ScanSourceTest, HandlesBlockCommentsAcrossLines) {
  const auto lines = ScanSource("a; /* rand();\n still rand(); */ b;\n");
  EXPECT_EQ(lines[0].code.find("rand"), std::string::npos);
  EXPECT_EQ(lines[1].code.find("rand"), std::string::npos);
  EXPECT_NE(lines[1].code.find("b;"), std::string::npos);
  EXPECT_NE(lines[0].comment.find("rand"), std::string::npos);
}

TEST(ScanSourceTest, HandlesRawStrings) {
  const auto lines =
      ScanSource("auto q = R\"zq(rand(); // not a comment)zq\"; c;\n");
  EXPECT_EQ(lines[0].code.find("rand"), std::string::npos);
  EXPECT_TRUE(lines[0].comment.empty());
  EXPECT_NE(lines[0].code.find("c;"), std::string::npos);
}

// ---------------------------------------------------------------------------
// raw-clock
// ---------------------------------------------------------------------------

TEST(RawClockTest, FlagsSteadyClockNow) {
  const auto vs = LintFile(
      File("src/zql/executor.cc",
           "void F() { auto t = std::chrono::steady_clock::now(); }\n"));
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "raw-clock");
  EXPECT_EQ(vs[0].line, 1);
}

TEST(RawClockTest, FlagsSystemClock) {
  const auto vs = LintFile(
      File("src/server/http.cc",
           "auto t = std::chrono::system_clock::now();\n"));
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "raw-clock");
}

TEST(RawClockTest, ClockHomeIsExempt) {
  const auto vs = LintFile(
      File("src/common/clock.h",
           "inline auto SteadyNow() { return "
           "std::chrono::steady_clock::now(); }\n"));
  EXPECT_TRUE(vs.empty());
}

TEST(RawClockTest, SuppressionOnLineSilences) {
  const auto vs = LintFile(
      File("src/zql/executor.cc",
           "auto t = std::chrono::steady_clock::now();  "
           "// zv-lint: raw-clock calibration probe\n"));
  EXPECT_TRUE(vs.empty());
}

TEST(RawClockTest, SuppressionInCommentBlockAboveSilences) {
  const auto vs = LintFile(
      File("src/zql/executor.cc",
           "// This probe measures wall time on purpose.\n"
           "// zv-lint: raw-clock\n"
           "auto t = std::chrono::steady_clock::now();\n"));
  EXPECT_TRUE(vs.empty());
}

TEST(RawClockTest, MentionInsideStringDoesNotFire) {
  const auto vs = LintFile(
      File("src/zql/executor.cc",
           "const char* doc = \"std::chrono::steady_clock::now()\";\n"));
  EXPECT_TRUE(vs.empty());
}

// ---------------------------------------------------------------------------
// raw-rand
// ---------------------------------------------------------------------------

TEST(RawRandTest, FlagsRandCallAndRandomDevice) {
  const auto vs = LintFile(
      File("src/engine/scoring.cc",
           "int a = rand();\n"
           "std::random_device rd;\n"));
  ASSERT_EQ(vs.size(), 2u);
  EXPECT_EQ(vs[0].rule, "raw-rand");
  EXPECT_EQ(vs[1].rule, "raw-rand");
}

TEST(RawRandTest, IdentifierContainingRandDoesNotFire) {
  const auto vs = LintFile(
      File("src/engine/scoring.cc",
           "int operand(int x);\n"
           "int y = my_rand(3);\n"));
  EXPECT_TRUE(vs.empty());
}

TEST(RawRandTest, RngHomeIsExemptAndSuppressionWorks) {
  EXPECT_TRUE(
      LintFile(File("src/common/rng.h", "std::random_device rd;\n")).empty());
  EXPECT_TRUE(LintFile(File("src/engine/scoring.cc",
                            "// zv-lint: raw-rand seeding the seed\n"
                            "std::random_device rd;\n"))
                  .empty());
}

// ---------------------------------------------------------------------------
// raw-simd
// ---------------------------------------------------------------------------

TEST(RawSimdTest, FlagsIntrinsicsAndImmintrinInclude) {
  const auto vs = LintFile(
      File("src/engine/scoring.cc",
           "#include <immintrin.h>\n"
           "__m256d v = _mm256_setzero_pd();\n"));
  ASSERT_EQ(vs.size(), 2u);
  EXPECT_EQ(vs[0].rule, "raw-simd");
  EXPECT_EQ(vs[0].line, 1);
  EXPECT_EQ(vs[1].rule, "raw-simd");
  EXPECT_EQ(vs[1].line, 2);
}

TEST(RawSimdTest, PrefixInsideIdentifierDoesNotFire) {
  // `_mm` only counts at an identifier start; mentions inside longer
  // names or inside string literals are not intrinsic use.
  const auto vs = LintFile(
      File("src/engine/scoring.cc",
           "int warm_mm256_count = 0;\n"
           "const char* doc = \"_mm256_add_pd\";\n"));
  EXPECT_TRUE(vs.empty());
}

TEST(RawSimdTest, SimdHomeIsExemptAndSuppressionWorks) {
  EXPECT_TRUE(LintFile(File("src/tasks/simd.cc",
                            "#include <immintrin.h>\n"
                            "__m256d v = _mm256_setzero_pd();\n"))
                  .empty());
  EXPECT_TRUE(LintFile(File("src/tasks/simd.h",
                            "__m256d Lanes(__m256d v);\n"))
                  .empty());
  EXPECT_TRUE(LintFile(File("src/engine/scoring.cc",
                            "// Prefetch hint only; no vector math here.\n"
                            "// zv-lint: raw-simd\n"
                            "_mm_prefetch(p, 1);\n"))
                  .empty());
}

// ---------------------------------------------------------------------------
// unordered-iter
// ---------------------------------------------------------------------------

TEST(UnorderedIterTest, FlagsIterationOverDeclaredUnorderedMap) {
  const auto vs = LintFile(
      File("src/server/registry.cc",
           "std::unordered_map<std::string, int> counts_;\n"
           "void F() { for (const auto& [k, v] : counts_) Use(k, v); }\n"));
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "unordered-iter");
  EXPECT_EQ(vs[0].line, 2);
  EXPECT_NE(vs[0].detail.find("counts_"), std::string::npos);
}

TEST(UnorderedIterTest, VectorIterationIsNotFlagged) {
  const auto vs = LintFile(
      File("src/server/registry.cc",
           "std::vector<int> xs_;\n"
           "void F() { for (int x : xs_) Use(x); }\n"));
  EXPECT_TRUE(vs.empty());
}

TEST(UnorderedIterTest, CompanionHeaderDeclarationIsVisible) {
  const SourceFile h =
      File("src/server/registry.h",
           "class R { std::unordered_set<std::string> names_; };\n");
  const auto vs = LintFile(
      File("src/server/registry.cc",
           "void R::F() { for (const auto& n : names_) Use(n); }\n"),
      {h});
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "unordered-iter");
}

TEST(UnorderedIterTest, OrderIndependentAnnotationSilences) {
  const auto vs = LintFile(
      File("src/server/registry.cc",
           "std::unordered_map<std::string, int> counts_;\n"
           "// zv-lint: order-independent — summed into one scalar.\n"
           "void F() { for (const auto& [k, v] : counts_) total += v; }\n"));
  EXPECT_TRUE(vs.empty());
}

TEST(UnorderedIterTest, MultiLineForHeaderIsStillCaught) {
  const auto vs = LintFile(
      File("src/server/registry.cc",
           "std::unordered_map<std::string, int> counts_;\n"
           "void F() {\n"
           "  for (const auto& kv :\n"
           "       counts_) {\n"
           "    Use(kv);\n"
           "  }\n"
           "}\n"));
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "unordered-iter");
  EXPECT_EQ(vs[0].line, 3);
}

// ---------------------------------------------------------------------------
// manual-lock
// ---------------------------------------------------------------------------

TEST(ManualLockTest, FlagsBareLockAndUnlock) {
  const auto vs = LintFile(
      File("src/server/service.cc",
           "void F() { mu_.lock(); x++; mu_.unlock(); }\n"));
  ASSERT_EQ(vs.size(), 1u);  // one violation per line, not per call
  EXPECT_EQ(vs[0].rule, "manual-lock");
}

TEST(ManualLockTest, ScopedGuardsAreNotFlagged) {
  const auto vs = LintFile(
      File("src/server/service.cc",
           "void F() {\n"
           "  std::lock_guard<std::mutex> lock(mu_);\n"
           "  std::unique_lock<std::mutex> lk(mu2_);\n"
           "}\n"));
  EXPECT_TRUE(vs.empty());
}

TEST(ManualLockTest, AnnotationSilences) {
  const auto vs = LintFile(
      File("src/common/bounded_queue.h",
           "lock.unlock();  // zv-lint: manual-lock unlock before notify\n"));
  EXPECT_TRUE(vs.empty());
}

// ---------------------------------------------------------------------------
// layering
// ---------------------------------------------------------------------------

TEST(LayeringTest, ApiToEngineEdgeIsRejected) {
  const std::vector<SourceFile> files = {
      File("src/api/handler.cc", "#include \"engine/scoring.h\"\n"),
      File("src/engine/scoring.h", "\n"),
  };
  const auto vs = LintIncludeGraph(files);
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "layering");
  EXPECT_EQ(vs[0].file, "src/api/handler.cc");
  EXPECT_NE(vs[0].detail.find("api -> engine"), std::string::npos);
}

TEST(LayeringTest, SanctionedEdgesPass) {
  const std::vector<SourceFile> files = {
      File("src/api/handler.cc",
           "#include \"zql/parser.h\"\n#include \"common/status.h\"\n"),
      File("src/zql/parser.h", "#include \"engine/scoring.h\"\n"),
      File("src/engine/scoring.h", "#include \"storage/table.h\"\n"),
      File("src/storage/table.h", "#include \"common/status.h\"\n"),
      File("src/common/status.h", "\n"),
  };
  EXPECT_TRUE(LintIncludeGraph(files).empty());
}

TEST(LayeringTest, UpwardEdgeIsRejected) {
  const std::vector<SourceFile> files = {
      File("src/common/util.cc", "#include \"storage/table.h\"\n"),
      File("src/storage/table.h", "\n"),
  };
  const auto vs = LintIncludeGraph(files);
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "layering");
  EXPECT_NE(vs[0].detail.find("common -> storage"), std::string::npos);
}

TEST(LayeringTest, UnknownLayerIsReported) {
  const std::vector<SourceFile> files = {
      File("src/newthing/x.cc", "#include \"common/status.h\"\n"),
      File("src/common/status.h", "\n"),
  };
  const auto vs = LintIncludeGraph(files);
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "layering");
  EXPECT_NE(vs[0].detail.find("not in the layer table"), std::string::npos);
}

TEST(LayeringTest, CommentedOutIncludeIsNotAnEdge) {
  const std::vector<SourceFile> files = {
      File("src/api/handler.cc", "// #include \"engine/scoring.h\"\n"),
      File("src/engine/scoring.h", "\n"),
  };
  EXPECT_TRUE(LintIncludeGraph(files).empty());
}

TEST(LayeringTest, SystemIncludesAreIgnored) {
  const std::vector<SourceFile> files = {
      File("src/common/util.cc", "#include <vector>\n#include <string>\n"),
  };
  EXPECT_TRUE(LintIncludeGraph(files).empty());
}

TEST(LayeringTest, KnownLayerAndEdgePredicates) {
  EXPECT_TRUE(KnownLayer("zql"));
  EXPECT_FALSE(KnownLayer("newthing"));
  EXPECT_TRUE(LayerEdgeAllowed("api", "zql"));
  EXPECT_TRUE(LayerEdgeAllowed("zql", "engine"));
  EXPECT_FALSE(LayerEdgeAllowed("api", "engine"));
  EXPECT_FALSE(LayerEdgeAllowed("engine", "zql"));
  EXPECT_FALSE(LayerEdgeAllowed("common", "storage"));
}

// ---------------------------------------------------------------------------
// include-cycle
// ---------------------------------------------------------------------------

TEST(IncludeCycleTest, ReportsMinimalTwoFileCycle) {
  const std::vector<SourceFile> files = {
      File("src/zql/a.h", "#include \"zql/b.h\"\n"),
      File("src/zql/b.h", "#include \"zql/a.h\"\n"),
  };
  const auto vs = LintIncludeGraph(files);
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "include-cycle");
  EXPECT_NE(vs[0].detail.find("src/zql/a.h"), std::string::npos);
  EXPECT_NE(vs[0].detail.find("src/zql/b.h"), std::string::npos);
}

TEST(IncludeCycleTest, ReportsMinimalCycleNotTheWholeStack) {
  // entry -> a -> b -> c -> b: the cycle is {b, c}, and `entry`/`a` must
  // not appear in the report even though they sit on the DFS stack.
  const std::vector<SourceFile> files = {
      File("src/zql/entry.h", "#include \"zql/a.h\"\n"),
      File("src/zql/a.h", "#include \"zql/b.h\"\n"),
      File("src/zql/b.h", "#include \"zql/c.h\"\n"),
      File("src/zql/c.h", "#include \"zql/b.h\"\n"),
  };
  const auto vs = LintIncludeGraph(files);
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "include-cycle");
  EXPECT_EQ(vs[0].detail.find("src/zql/entry.h"), std::string::npos);
  EXPECT_EQ(vs[0].detail.find("src/zql/a.h"), std::string::npos);
  EXPECT_NE(vs[0].detail.find("src/zql/b.h"), std::string::npos);
  EXPECT_NE(vs[0].detail.find("src/zql/c.h"), std::string::npos);
}

TEST(IncludeCycleTest, AcyclicGraphIsClean) {
  const std::vector<SourceFile> files = {
      File("src/zql/a.h", "#include \"zql/b.h\"\n#include \"zql/c.h\"\n"),
      File("src/zql/b.h", "#include \"zql/c.h\"\n"),
      File("src/zql/c.h", "\n"),
  };
  EXPECT_TRUE(LintIncludeGraph(files).empty());
}

TEST(IncludeCycleTest, SlashlessIncludeResolvesToOwnDirectory) {
  const std::vector<SourceFile> files = {
      File("src/zql/a.h", "#include \"b.h\"\n"),
      File("src/zql/b.h", "#include \"a.h\"\n"),
  };
  const auto vs = LintIncludeGraph(files);
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "include-cycle");
}

// ---------------------------------------------------------------------------
// LintAll + baseline ratchet
// ---------------------------------------------------------------------------

TEST(LintAllTest, ResolvesCompanionHeadersAndSorts) {
  const std::vector<SourceFile> files = {
      File("src/server/b.cc",
           "void R::F() { for (const auto& n : names_) Use(n); }\n"),
      File("src/server/b.h",
           "class R { std::unordered_set<std::string> names_; };\n"),
      File("src/api/a.cc", "int x = rand();\n"),
  };
  const auto vs = LintAll(files);
  ASSERT_EQ(vs.size(), 2u);
  EXPECT_EQ(vs[0].file, "src/api/a.cc");  // sorted by file
  EXPECT_EQ(vs[0].rule, "raw-rand");
  EXPECT_EQ(vs[1].rule, "unordered-iter");
}

TEST(BaselineTest, ParseIgnoresCommentsAndBlanks) {
  const Baseline b = ParseBaseline(
      "# zv-lint baseline\n"
      "\n"
      "raw-rand|src/api/a.cc|int x = rand();\n");
  ASSERT_EQ(b.keys.size(), 1u);
  EXPECT_EQ(b.keys[0], "raw-rand|src/api/a.cc|int x = rand();");
}

TEST(BaselineTest, RatchetPassesOldFailsNewReportsStale) {
  const SourceFile old_site = File("src/api/a.cc", "int x = rand();\n");
  const auto before = LintAll({old_site});
  ASSERT_EQ(before.size(), 1u);
  const Baseline baseline = ParseBaseline(FormatBaseline(before));

  // The baselined site passes.
  std::vector<std::string> stale;
  EXPECT_TRUE(ApplyBaseline(before, baseline, &stale).empty());
  EXPECT_TRUE(stale.empty());

  // A new violation in another file still fails.
  const auto with_new = LintAll(
      {old_site, File("src/api/b.cc", "std::random_device rd;\n")});
  const auto remaining = ApplyBaseline(with_new, baseline, &stale);
  ASSERT_EQ(remaining.size(), 1u);
  EXPECT_EQ(remaining[0].file, "src/api/b.cc");

  // Fixing the old site turns its baseline entry stale.
  stale.clear();
  const auto after_fix = LintAll({File("src/api/a.cc", "int x = 7;\n")});
  EXPECT_TRUE(ApplyBaseline(after_fix, baseline, &stale).empty());
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_NE(stale[0].find("raw-rand"), std::string::npos);
}

TEST(BaselineTest, KeyIsWhitespaceNormalized) {
  const auto tight = LintAll({File("src/api/a.cc", "int x = rand();\n")});
  const auto loose =
      LintAll({File("src/api/a.cc", "   int  x  =  rand();\n")});
  ASSERT_EQ(tight.size(), 1u);
  ASSERT_EQ(loose.size(), 1u);
  EXPECT_EQ(tight[0].key, loose[0].key);
}

TEST(RulesTest, EveryRuleIdIsRegistered) {
  std::vector<std::string> ids;
  for (const RuleInfo& r : Rules()) ids.push_back(r.id);
  for (const char* expected :
       {"raw-clock", "raw-rand", "unordered-iter", "manual-lock", "raw-simd",
        "layering", "include-cycle"}) {
    EXPECT_NE(std::find(ids.begin(), ids.end(), expected), ids.end())
        << expected;
  }
}

}  // namespace
}  // namespace zv::lint
