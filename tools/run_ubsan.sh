#!/usr/bin/env bash
# Undefined-behavior gate: builds a UBSan tree (-DZV_UBSAN=ON, i.e.
# -fsanitize=undefined -fno-sanitize-recover=all, so the first report
# aborts the test instead of scrolling past) and runs the FULL default
# suite under it — UB is not confined to the wire-facing layers the
# ASan gate concentrates on: a misaligned load in the roaring bitmap,
# a signed overflow in a scoring loop, or an invalid enum cast in the
# parser are all silent until the optimizer acts on them.
#
# After the suites, the "stress" configuration runs the randomized
# multi-session soak (batch_stress) under the same instrumented build.
#
# Usage: tools/run_ubsan.sh [source_root] [build_dir]
#   source_root  repo root (default: parent of this script)
#   build_dir    UBSan build tree (default: <source_root>/build-ubsan)
#
# Registered in ctest under the "ubsan" label with CONFIGURATIONS ubsan,
# so plain `ctest` skips it; run `ctest -C ubsan` — or this script.

set -euo pipefail

ROOT="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
BUILD="${2:-$ROOT/build-ubsan}"

echo "== configuring UBSan tree at $BUILD =="
cmake -B "$BUILD" -S "$ROOT" -DZV_UBSAN=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  > /dev/null

echo "== building =="
cmake --build "$BUILD" -j > /dev/null

echo "== zv-lint preflight =="
"$BUILD/zv_lint" "$ROOT" --baseline "$ROOT/tools/zv_lint_baseline.txt"

echo "== running the full suite under UndefinedBehaviorSanitizer =="
# print_stacktrace makes the one-line report actionable;
# halt_on_error pairs with -fno-sanitize-recover=all for belt and braces.
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1 halt_on_error=1}"
(cd "$BUILD" && ctest --output-on-failure -j "$(nproc)")

echo "== running the randomized soak (stress configuration) =="
(cd "$BUILD" && ctest --output-on-failure -C stress -L stress)

echo "UBSan gate passed: no undefined behavior reported in the full suite + batch_stress"
