#include "tools/zv_lint.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <functional>
#include <map>
#include <set>
#include <sstream>

namespace zv::lint {

namespace {

constexpr size_t npos = std::string::npos;

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsTagChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '-';
}

/// Position of `ident` in `code` at or after `from` with identifier
/// boundaries on both sides; npos when absent.
size_t FindIdent(const std::string& code, const char* ident, size_t from = 0) {
  const size_t len = std::strlen(ident);
  size_t pos = code.find(ident, from);
  while (pos != npos) {
    const bool bound_left = pos == 0 || !IsIdentChar(code[pos - 1]);
    const bool bound_right =
        pos + len >= code.size() || !IsIdentChar(code[pos + len]);
    if (bound_left && bound_right) return pos;
    pos = code.find(ident, pos + 1);
  }
  return npos;
}

size_t SkipSpace(const std::string& s, size_t i) {
  while (i < s.size() &&
         std::isspace(static_cast<unsigned char>(s[i])) != 0) {
    ++i;
  }
  return i;
}

std::string ReadIdentAt(const std::string& s, size_t i) {
  size_t j = i;
  while (j < s.size() && IsIdentChar(s[j])) ++j;
  if (j == i || std::isdigit(static_cast<unsigned char>(s[i])) != 0) return "";
  return s.substr(i, j - i);
}

/// Trims and collapses interior whitespace runs — the line-content
/// normalization baseline keys use, so reformatting alone does not churn
/// the baseline.
std::string Squeeze(const std::string& s) {
  std::string out;
  bool in_space = true;  // swallow leading whitespace
  for (char c : s) {
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      in_space = true;
      continue;
    }
    if (in_space && !out.empty()) out.push_back(' ');
    in_space = false;
    out.push_back(c);
  }
  return out;
}

bool EndsWith(const std::string& s, const char* suffix) {
  const size_t len = std::strlen(suffix);
  return s.size() >= len && s.compare(s.size() - len, len, suffix) == 0;
}

// ---------------------------------------------------------------------------
// Layer DAG. Each top-level directory under src/ may include itself,
// `common`, and exactly the layers listed here — the table IS the
// architecture diagram in docs/architecture.md. Adding an edge means
// editing this table (and the diagram), which is the point: a new
// cross-layer dependency is a reviewed decision, not an accident.
// ---------------------------------------------------------------------------

const std::map<std::string, std::set<std::string>>& AllowedEdges() {
  static const std::map<std::string, std::set<std::string>> kAllowed = {
      {"api", {"server", "zql", "viz", "common"}},
      {"server", {"zql", "engine", "tasks", "viz", "common"}},
      {"zql", {"engine", "tasks", "sql", "viz", "common"}},
      {"engine", {"sql", "storage", "roaring", "common"}},
      {"tasks", {"viz", "common"}},
      {"workload", {"storage", "common"}},
      {"study", {"common"}},
      {"algebra", {"viz", "storage", "common"}},
      {"viz", {"sql", "storage", "common"}},
      {"sql", {"common"}},
      {"storage", {"common"}},
      {"roaring", {"common"}},
      {"common", {}},
  };
  return kAllowed;
}

/// Layer of a repo-relative path, or "" when it is not under src/.
std::string LayerOf(const std::string& path) {
  if (path.rfind("src/", 0) != 0) return "";
  const size_t slash = path.find('/', 4);
  if (slash == npos) return "";
  return path.substr(4, slash - 4);
}

std::string DirOf(const std::string& path) {
  const size_t slash = path.rfind('/');
  return slash == npos ? std::string() : path.substr(0, slash);
}

// ---------------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------------

const char* SuppressTag(const std::string& rule) {
  // unordered-iter takes a semantic tag: the author asserts the loop's
  // effect does not depend on hash order, not merely "silence the tool".
  return rule == "unordered-iter" ? "order-independent" : rule.c_str();
}

bool CommentHasTag(const std::string& comment, const std::string& tag) {
  size_t pos = comment.find("zv-lint:");
  if (pos == npos) return false;
  const std::string rest = comment.substr(pos + std::strlen("zv-lint:"));
  size_t at = rest.find(tag);
  while (at != npos) {
    const bool bound_left = at == 0 || !IsTagChar(rest[at - 1]);
    const bool bound_right =
        at + tag.size() >= rest.size() || !IsTagChar(rest[at + tag.size()]);
    if (bound_left && bound_right) return true;
    at = rest.find(tag, at + 1);
  }
  return false;
}

/// A suppression comment counts on the flagged line itself or anywhere in
/// the contiguous comment-only block directly above it (annotations are
/// usually full sentences and wrap).
bool Suppressed(const std::vector<ScannedLine>& lines, size_t idx,
                const std::string& rule) {
  const std::string tag = SuppressTag(rule);
  if (idx < lines.size() && CommentHasTag(lines[idx].comment, tag)) {
    return true;
  }
  for (size_t j = idx; j > 0; --j) {
    const ScannedLine& prev = lines[j - 1];
    if (!Squeeze(prev.code).empty()) break;   // a code line ends the block
    if (CommentHasTag(prev.comment, tag)) return true;
    if (Squeeze(prev.comment).empty()) break;  // a blank line ends the block
  }
  return false;
}

// ---------------------------------------------------------------------------
// Per-line pattern checks
// ---------------------------------------------------------------------------

/// `steady_clock :: now` with arbitrary interior whitespace. Mentions of
/// steady_clock alone (time_point members, template parameters) are fine;
/// only the clock *read* is reserved to common/clock.h.
bool HasSteadyClockNow(const std::string& code) {
  size_t pos = 0;
  while ((pos = FindIdent(code, "steady_clock", pos)) != npos) {
    size_t j = SkipSpace(code, pos + std::strlen("steady_clock"));
    if (code.compare(j, 2, "::") == 0) {
      j = SkipSpace(code, j + 2);
      if (ReadIdentAt(code, j) == "now") return true;
    }
    pos += std::strlen("steady_clock");
  }
  return false;
}

/// `rand(` / `srand(` as a call (not a longer identifier), or any mention
/// of random_device.
bool HasRawRand(const std::string& code) {
  for (const char* fn : {"rand", "srand"}) {
    size_t pos = 0;
    while ((pos = FindIdent(code, fn, pos)) != npos) {
      const size_t j = SkipSpace(code, pos + std::strlen(fn));
      if (j < code.size() && code[j] == '(') return true;
      pos += std::strlen(fn);
    }
  }
  return FindIdent(code, "random_device") != npos;
}

/// Vector-intrinsic use: an immintrin.h include, an `_mm*`/`_mm256_*`/
/// `_mm512_*` intrinsic call, or an `__m64`/`__m128`/`__m256`/`__m512`
/// vector type. Intrinsics outside the sanctioned kernel layer bypass the
/// scalar-fallback and bit-exactness contracts tasks/simd.h enforces.
bool HasRawSimd(const std::string& code) {
  if (code.find("immintrin.h") != npos) return true;
  for (const char* prefix : {"_mm_", "_mm256_", "_mm512_", "__m64", "__m128",
                             "__m256", "__m512"}) {
    size_t pos = 0;
    const size_t len = std::strlen(prefix);
    while ((pos = code.find(prefix, pos)) != npos) {
      if (pos == 0 || !IsIdentChar(code[pos - 1])) return true;
      pos += len;
    }
  }
  return false;
}

/// A member call `.lock()` / `->unlock()` etc.
bool HasManualLock(const std::string& code) {
  for (const char* fn : {"lock", "unlock"}) {
    size_t pos = 0;
    while ((pos = FindIdent(code, fn, pos)) != npos) {
      // Member access immediately before?
      size_t b = pos;
      while (b > 0 &&
             std::isspace(static_cast<unsigned char>(code[b - 1])) != 0) {
        --b;
      }
      const bool member =
          (b >= 1 && code[b - 1] == '.') ||
          (b >= 2 && code[b - 2] == '-' && code[b - 1] == '>');
      if (member) {
        const size_t j = SkipSpace(code, pos + std::strlen(fn));
        if (j < code.size() && code[j] == '(') return true;
      }
      pos += std::strlen(fn);
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Unordered-container declaration collection
// ---------------------------------------------------------------------------

const char* const kUnorderedTypes[] = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

/// Skips a balanced template-argument list starting at `<`; returns the
/// index just past the matching `>` (or npos when unbalanced).
size_t SkipTemplateArgs(const std::string& code, size_t i) {
  if (i >= code.size() || code[i] != '<') return i;
  int depth = 0;
  for (; i < code.size(); ++i) {
    if (code[i] == '<') ++depth;
    if (code[i] == '>' && --depth == 0) return i + 1;
  }
  return npos;
}

/// Names declared with an unordered container type: variables, members,
/// parameters, and (one level of) `using Alias = std::unordered_map<...>`
/// aliases, whose own declarations are scanned in a second pass.
std::set<std::string> CollectUnorderedNames(
    const std::vector<ScannedLine>& lines) {
  std::string code;
  for (const ScannedLine& l : lines) {
    code += l.code;
    code += '\n';
  }
  std::vector<std::string> types(std::begin(kUnorderedTypes),
                                 std::end(kUnorderedTypes));
  // `using A = std::unordered_map<...>;` registers A as a container type.
  size_t upos = 0;
  while ((upos = FindIdent(code, "using", upos)) != npos) {
    size_t j = SkipSpace(code, upos + 5);
    const std::string alias = ReadIdentAt(code, j);
    upos = j;
    if (alias.empty()) continue;
    j = SkipSpace(code, j + alias.size());
    if (j >= code.size() || code[j] != '=') continue;
    const size_t end = code.find(';', j);
    const std::string rhs =
        code.substr(j, end == npos ? npos : end - j);
    for (const char* t : kUnorderedTypes) {
      if (FindIdent(rhs, t) != npos) {
        types.push_back(alias);
        break;
      }
    }
  }

  std::set<std::string> names;
  for (const std::string& type : types) {
    size_t pos = 0;
    while ((pos = FindIdent(code, type.c_str(), pos)) != npos) {
      size_t j = SkipSpace(code, pos + type.size());
      pos = j;
      j = SkipTemplateArgs(code, j);
      if (j == npos) break;
      j = SkipSpace(code, j);
      // Reference/pointer declarators.
      while (j < code.size() && (code[j] == '&' || code[j] == '*')) {
        j = SkipSpace(code, j + 1);
      }
      const std::string name = ReadIdentAt(code, j);
      if (!name.empty() && name != "const") names.insert(name);
    }
  }
  return names;
}

/// The parenthesized header of a `for` whose keyword sits on line `idx`,
/// joined across continuation lines (bounded lookahead).
std::string ForHeader(const std::vector<ScannedLine>& lines, size_t idx,
                      size_t keyword_pos) {
  std::string header;
  int depth = 0;
  bool started = false;
  for (size_t l = idx; l < lines.size() && l < idx + 8; ++l) {
    const std::string& code = lines[l].code;
    size_t i = l == idx ? keyword_pos : 0;
    for (; i < code.size(); ++i) {
      if (code[i] == '(') {
        ++depth;
        started = true;
      } else if (code[i] == ')') {
        if (--depth == 0) return header;
      } else if (started) {
        header.push_back(code[i]);
      }
    }
    if (started) header.push_back(' ');
  }
  return header;
}

Violation MakeViolation(const std::string& rule, const std::string& file,
                        size_t line_idx, const std::string& code,
                        std::string detail) {
  Violation v;
  v.rule = rule;
  v.file = file;
  v.line = static_cast<int>(line_idx) + 1;
  v.detail = std::move(detail);
  v.key = rule + "|" + file + "|" + Squeeze(code);
  return v;
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

std::vector<ScannedLine> ScanSource(const std::string& content) {
  std::vector<ScannedLine> lines;
  lines.emplace_back();
  enum class St { kCode, kLineComment, kBlockComment, kString, kChar, kRaw };
  St st = St::kCode;
  std::string raw_delim;
  const size_t n = content.size();
  for (size_t i = 0; i < n; ++i) {
    const char c = content[i];
    if (c == '\n') {
      if (st == St::kLineComment) st = St::kCode;
      lines.emplace_back();
      continue;
    }
    ScannedLine& line = lines.back();
    switch (st) {
      case St::kCode:
        if (c == '/' && i + 1 < n && content[i + 1] == '/') {
          st = St::kLineComment;
          ++i;
        } else if (c == '/' && i + 1 < n && content[i + 1] == '*') {
          st = St::kBlockComment;
          ++i;
        } else if (c == '"') {
          line.code.push_back('"');
          if (i > 0 && content[i - 1] == 'R') {
            raw_delim.clear();
            size_t j = i + 1;
            while (j < n && content[j] != '(' && content[j] != '\n') {
              raw_delim.push_back(content[j++]);
            }
            i = j;  // at the opening '('
            st = St::kRaw;
          } else {
            st = St::kString;
          }
        } else if (c == '\'') {
          line.code.push_back('\'');
          st = St::kChar;
        } else {
          line.code.push_back(c);
        }
        break;
      case St::kLineComment:
        line.comment.push_back(c);
        break;
      case St::kBlockComment:
        if (c == '*' && i + 1 < n && content[i + 1] == '/') {
          st = St::kCode;
          ++i;
        } else {
          line.comment.push_back(c);
        }
        break;
      case St::kString:
      case St::kChar: {
        const char quote = st == St::kString ? '"' : '\'';
        if (c == '\\' && i + 1 < n) {
          ++i;
          line.code.push_back(' ');
        } else if (c == quote) {
          line.code.push_back(quote);
          st = St::kCode;
        } else {
          line.code.push_back(' ');
        }
        break;
      }
      case St::kRaw:
        if (c == ')' &&
            content.compare(i + 1, raw_delim.size(), raw_delim) == 0 &&
            i + 1 + raw_delim.size() < n &&
            content[i + 1 + raw_delim.size()] == '"') {
          i += raw_delim.size() + 1;  // lands on the closing quote
          line.code.push_back('"');
          st = St::kCode;
        } else {
          line.code.push_back(' ');
        }
        break;
    }
  }
  return lines;
}

const std::vector<RuleInfo>& Rules() {
  static const std::vector<RuleInfo> kRules = {
      {"raw-clock",
       "steady_clock::now()/system_clock outside common/clock.{h,cc}"},
      {"raw-rand", "rand()/srand()/std::random_device outside common/rng.h"},
      {"unordered-iter",
       "unordered-container iteration without an order-independent "
       "annotation"},
      {"manual-lock", "bare .lock()/.unlock() instead of a scoped guard"},
      {"raw-simd",
       "vector intrinsics (immintrin.h, _mm*/__m*) outside tasks/simd.{h,cc}"},
      {"layering", "#include edge not in the layer DAG"},
      {"include-cycle", "cycle in the file-level include graph"},
  };
  return kRules;
}

bool KnownLayer(const std::string& dir) {
  return AllowedEdges().count(dir) > 0;
}

bool LayerEdgeAllowed(const std::string& from, const std::string& to) {
  if (from == to) return true;
  const auto it = AllowedEdges().find(from);
  return it != AllowedEdges().end() && it->second.count(to) > 0;
}

std::vector<Violation> LintFile(const SourceFile& f,
                                const std::vector<SourceFile>& headers) {
  const std::vector<ScannedLine> lines = ScanSource(f.content);
  const bool clock_home = EndsWith(f.path, "common/clock.h") ||
                          EndsWith(f.path, "common/clock.cc");
  const bool rng_home = EndsWith(f.path, "common/rng.h");
  const bool simd_home = EndsWith(f.path, "tasks/simd.h") ||
                         EndsWith(f.path, "tasks/simd.cc");

  // Container names declared here or in companion headers (a .cc iterating
  // a member its own header declares is the common case).
  std::set<std::string> unordered = CollectUnorderedNames(lines);
  for (const SourceFile& h : headers) {
    const std::set<std::string> more =
        CollectUnorderedNames(ScanSource(h.content));
    unordered.insert(more.begin(), more.end());
  }

  std::vector<Violation> out;
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string& code = lines[i].code;
    if (code.empty()) continue;

    if (!clock_home &&
        (HasSteadyClockNow(code) || FindIdent(code, "system_clock") != npos) &&
        !Suppressed(lines, i, "raw-clock")) {
      out.push_back(MakeViolation(
          "raw-clock", f.path, i, code,
          "raw clock read; use zv::SteadyNow()/MsSince()/Clock "
          "(common/clock.h) so time is injectable and consolidated"));
    }

    if (!rng_home && HasRawRand(code) && !Suppressed(lines, i, "raw-rand")) {
      out.push_back(MakeViolation(
          "raw-rand", f.path, i, code,
          "nondeterministic RNG; use the seeded zv::Rng (common/rng.h)"));
    }

    if (!simd_home && HasRawSimd(code) && !Suppressed(lines, i, "raw-simd")) {
      out.push_back(MakeViolation(
          "raw-simd", f.path, i, code,
          "raw vector intrinsics; the only sanctioned home is the "
          "tasks/simd.h kernel layer, which pairs every vector path with a "
          "bit-identical scalar fallback and runtime dispatch"));
    }

    if (HasManualLock(code) && !Suppressed(lines, i, "manual-lock")) {
      out.push_back(MakeViolation(
          "manual-lock", f.path, i, code,
          "bare lock()/unlock(); use std::lock_guard/std::unique_lock/"
          "zv::ScopedUnlock or annotate `// zv-lint: manual-lock`"));
    }

    if (!unordered.empty()) {
      size_t pos = 0;
      while ((pos = FindIdent(code, "for", pos)) != npos) {
        const std::string header = ForHeader(lines, i, pos);
        pos += 3;
        for (const std::string& name : unordered) {
          if (FindIdent(header, name.c_str()) == npos) continue;
          if (!Suppressed(lines, i, "unordered-iter")) {
            out.push_back(MakeViolation(
                "unordered-iter", f.path, i, code,
                "iterates unordered container `" + name +
                    "`; hash order is not deterministic — annotate "
                    "`// zv-lint: order-independent` if the loop's effect "
                    "is order-free"));
          }
          break;
        }
      }
    }
  }
  return out;
}

std::vector<Violation> LintIncludeGraph(const std::vector<SourceFile>& files) {
  std::vector<Violation> out;
  std::set<std::string> known;
  for (const SourceFile& f : files) known.insert(f.path);

  // file -> included files present in the set (sorted for determinism).
  std::map<std::string, std::vector<std::string>> graph;
  for (const SourceFile& f : files) {
    const std::string layer = LayerOf(f.path);
    std::vector<std::string>& edges = graph[f.path];
    // Include paths are read from the raw content (the path text lives
    // inside the string literal the channel scanner blanks out), but only
    // on lines whose *code* channel carries the directive — a commented-
    // out include is not an edge.
    const std::vector<ScannedLine> lines = ScanSource(f.content);
    std::istringstream stream(f.content);
    std::string raw;
    int lineno = 0;
    while (std::getline(stream, raw)) {
      ++lineno;
      const size_t idx = static_cast<size_t>(lineno) - 1;
      if (idx >= lines.size() || lines[idx].code.find('#') == npos) continue;
      size_t pos = raw.find_first_not_of(" \t");
      if (pos == npos || raw[pos] != '#') continue;
      pos = raw.find_first_not_of(" \t", pos + 1);
      if (pos == npos || raw.compare(pos, 7, "include") != 0) continue;
      pos = raw.find('"', pos + 7);
      if (pos == npos) continue;
      const size_t end = raw.find('"', pos + 1);
      if (end == npos) continue;
      const std::string inc = raw.substr(pos + 1, end - pos - 1);

      // Resolve: project includes are rooted at src/ ("common/clock.h");
      // a slashless include refers to the includer's own directory.
      std::string target;
      if (inc.find('/') == npos) {
        target = DirOf(f.path) + "/" + inc;
      } else {
        target = "src/" + inc;
      }
      if (known.count(target) > 0) edges.push_back(target);

      const std::string to_layer = LayerOf(target);
      if (layer.empty() || to_layer.empty()) continue;
      if (!KnownLayer(layer)) {
        out.push_back(MakeViolation(
            "layering", f.path, static_cast<size_t>(lineno) - 1, raw,
            "directory src/" + layer +
                " is not in the layer table (tools/zv_lint.cc "
                "AllowedEdges); place the new layer in the DAG first"));
        continue;
      }
      if (!LayerEdgeAllowed(layer, to_layer)) {
        out.push_back(MakeViolation(
            "layering", f.path, static_cast<size_t>(lineno) - 1, raw,
            "include edge " + layer + " -> " + to_layer +
                " violates the layer DAG api -> server -> zql -> "
                "{engine, tasks} -> {sql, storage, roaring, algebra, viz} "
                "-> common"));
      }
    }
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  }

  // Cycle detection: DFS with colors; report the first back edge's cycle
  // (the stack segment from the revisited node — a minimal cycle in the
  // sense that every hop is a real include edge).
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::vector<std::string> stack;
  std::vector<std::string> cycle;
  std::function<bool(const std::string&)> dfs =
      [&](const std::string& node) -> bool {
    color[node] = 1;
    stack.push_back(node);
    for (const std::string& next : graph[node]) {
      if (color[next] == 1) {
        const auto at = std::find(stack.begin(), stack.end(), next);
        cycle.assign(at, stack.end());
        cycle.push_back(next);
        return true;
      }
      if (color[next] == 0 && dfs(next)) return true;
    }
    stack.pop_back();
    color[node] = 2;
    return false;
  };
  for (const auto& [node, edges] : graph) {
    (void)edges;
    if (color[node] == 0 && dfs(node)) break;
  }
  if (!cycle.empty()) {
    std::string path;
    for (size_t i = 0; i < cycle.size(); ++i) {
      if (i > 0) path += " -> ";
      path += cycle[i];
    }
    Violation v;
    v.rule = "include-cycle";
    v.file = cycle.front();
    v.line = 1;
    v.detail = "include cycle: " + path;
    v.key = "include-cycle|" + cycle.front() + "|" + path;
    out.push_back(std::move(v));
  }
  return out;
}

std::vector<Violation> LintAll(const std::vector<SourceFile>& files) {
  std::map<std::string, const SourceFile*> by_path;
  for (const SourceFile& f : files) by_path[f.path] = &f;

  std::vector<Violation> out;
  for (const SourceFile& f : files) {
    std::vector<SourceFile> headers;
    if (EndsWith(f.path, ".cc")) {
      const std::string companion =
          f.path.substr(0, f.path.size() - 3) + ".h";
      const auto it = by_path.find(companion);
      if (it != by_path.end()) headers.push_back(*it->second);
    }
    std::vector<Violation> vs = LintFile(f, headers);
    out.insert(out.end(), std::make_move_iterator(vs.begin()),
               std::make_move_iterator(vs.end()));
  }
  std::vector<Violation> graph = LintIncludeGraph(files);
  out.insert(out.end(), std::make_move_iterator(graph.begin()),
             std::make_move_iterator(graph.end()));

  std::sort(out.begin(), out.end(),
            [](const Violation& a, const Violation& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return out;
}

Baseline ParseBaseline(const std::string& text) {
  Baseline b;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    // Trim trailing CR/whitespace.
    while (!line.empty() &&
           std::isspace(static_cast<unsigned char>(line.back())) != 0) {
      line.pop_back();
    }
    if (line.empty() || line[0] == '#') continue;
    b.keys.push_back(line);
  }
  return b;
}

std::string FormatBaseline(const std::vector<Violation>& violations) {
  std::set<std::string> keys;
  for (const Violation& v : violations) keys.insert(v.key);
  std::string out =
      "# zv-lint baseline: accepted pre-existing violations (the ratchet).\n"
      "# Each line is `rule|file|normalized source line`. Regenerate with\n"
      "#   zv_lint <repo_root> --write-baseline tools/zv_lint_baseline.txt\n"
      "# Entries may only be DELETED (debt paid) — never add new ones;\n"
      "# fix or annotate the new site instead.\n";
  for (const std::string& k : keys) {
    out += k;
    out += '\n';
  }
  return out;
}

std::vector<Violation> ApplyBaseline(const std::vector<Violation>& violations,
                                     const Baseline& baseline,
                                     std::vector<std::string>* stale) {
  std::set<std::string> accepted(baseline.keys.begin(), baseline.keys.end());
  std::set<std::string> used;
  std::vector<Violation> out;
  for (const Violation& v : violations) {
    if (accepted.count(v.key) > 0) {
      used.insert(v.key);
    } else {
      out.push_back(v);
    }
  }
  if (stale != nullptr) {
    for (const std::string& k : accepted) {
      if (used.count(k) == 0) stale->push_back(k);
    }
  }
  return out;
}

}  // namespace zv::lint
