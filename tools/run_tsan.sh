#!/usr/bin/env bash
# Race gate for the concurrent layers: builds a ThreadSanitizer tree
# (-DZV_TSAN=ON) and runs the concurrency-sensitive suites under it —
#   parallel_test  (thread pool, deterministic ParallelFor, cancellation)
#   topk_test      (SharedTopK's relaxed atomic bound)
#   server_test    (sessions, caches, async execution, admission control)
#   pipeline_test  (fetch thread + bounded hand-off queue byte-identity,
#                   mid-pipeline cancellation)
#   shard_test     (chunk-sharded scans: worker pool, chunk job/result
#                   queues, mid-scan cancellation fan-out)
#   batch_test     (cross-query shared scans: group-commit coordinator,
#                   fused-pass worker pool, ScoringContextPool
#                   single-flight, mid-batch cancellation)
#   zql_roundtrip_test (canonical serialization / fingerprint property
#                   suite — serial, but cheap enough to keep in the gate)
#   trace_test     (trace spans opened concurrently from the coordinator,
#                   fetch thread, and shard workers; trace mutex)
#   metrics_test   (lock-free histogram recording hammered from many
#                   threads; registry mutex)
#
# After the suites, the "stress" configuration runs the randomized
# multi-session soak (batch_stress) under the same instrumented build.
#
# Usage: tools/run_tsan.sh [source_root] [build_dir]
#   source_root  repo root (default: parent of this script)
#   build_dir    TSan build tree (default: <source_root>/build-tsan)
#
# Registered in ctest under the "tsan" label with CONFIGURATIONS tsan, so
# plain `ctest` skips it; run `ctest -C tsan` — or this script directly.

set -euo pipefail

ROOT="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
BUILD="${2:-$ROOT/build-tsan}"
SUITES="parallel_test topk_test server_test pipeline_test shard_test \
batch_test zql_roundtrip_test trace_test metrics_test"

echo "== configuring TSan tree at $BUILD =="
cmake -B "$BUILD" -S "$ROOT" -DZV_TSAN=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  > /dev/null

echo "== building $SUITES =="
# shellcheck disable=SC2086  # word-splitting the target list is the point
cmake --build "$BUILD" -j --target $SUITES zv_lint

echo "== zv-lint preflight =="
# A cheap static gate before the expensive instrumented run: a raw clock
# read or layering break fails here in seconds, not after the soak.
"$BUILD/zv_lint" "$ROOT" --baseline "$ROOT/tools/zv_lint_baseline.txt"

echo "== running under ThreadSanitizer =="
# halt_on_error surfaces the first race as a test failure instead of a log
# line; second_deadlock_stack improves lock-inversion reports.
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}"
(cd "$BUILD" && ctest --output-on-failure \
  -R '^(parallel_test|topk_test|server_test|pipeline_test|shard_test|batch_test|zql_roundtrip_test|trace_test|metrics_test)$')

echo "== running the randomized soak (stress configuration) =="
(cd "$BUILD" && ctest --output-on-failure -C stress -L stress)

echo "TSan gate passed: no races reported in $SUITES + batch_stress"
