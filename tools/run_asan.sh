#!/usr/bin/env bash
# Memory gate for the wire-facing layers: builds an AddressSanitizer tree
# (-DZV_ASAN=ON) and runs the codec/api/server suites under it —
#   json_test         (the JSON parser: the code that touches raw,
#                      untrusted wire bytes)
#   api_test          (protocol encode/decode, end-to-end wire path)
#   zql_builder_test  (AST construction + canonical serialization)
#   server_test       (task lifecycle: shared QueryTask state, caches)
#   shard_test        (per-chunk row-id buffers crossing the shard
#                      worker queues; ChunkScanner lifetime)
#   batch_test        (per-statement row-id buffers fanning out of shared
#                      scan passes; MultiChunkScanner + snapshot lifetime
#                      across epoch bumps and abandoning members)
#   zql_roundtrip_test (parser + canonical serializer over generated
#                      inputs — string-buffer heavy, cheap to keep)
#   trace_test        (span-tree ownership across threads; Chrome/JSON
#                      trace exports; wire metrics payloads)
#   metrics_test      (registry-owned metric lifetimes, snapshot copies)
#
# After the suites, the "stress" configuration runs the randomized
# multi-session soak (batch_stress) under the same instrumented build.
#
# Usage: tools/run_asan.sh [source_root] [build_dir]
#   source_root  repo root (default: parent of this script)
#   build_dir    ASan build tree (default: <source_root>/build-asan)
#
# Registered in ctest under the "asan" label with CONFIGURATIONS asan, so
# plain `ctest` skips it; run `ctest -C asan` — or this script directly.

set -euo pipefail

ROOT="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
BUILD="${2:-$ROOT/build-asan}"
SUITES="json_test api_test zql_builder_test server_test shard_test \
batch_test zql_roundtrip_test trace_test metrics_test"

echo "== configuring ASan tree at $BUILD =="
cmake -B "$BUILD" -S "$ROOT" -DZV_ASAN=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  > /dev/null

echo "== building $SUITES =="
# shellcheck disable=SC2086  # word-splitting the target list is the point
cmake --build "$BUILD" -j --target $SUITES zv_lint

echo "== zv-lint preflight =="
# A cheap static gate before the expensive instrumented run: a raw clock
# read or layering break fails here in seconds, not after the soak.
"$BUILD/zv_lint" "$ROOT" --baseline "$ROOT/tools/zv_lint_baseline.txt"

echo "== running under AddressSanitizer =="
# detect_leaks catches forgotten Json/AST nodes; abort_on_error turns the
# first report into a test failure instead of a log line.
export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1 abort_on_error=1}"
(cd "$BUILD" && ctest --output-on-failure \
  -R '^(json_test|api_test|zql_builder_test|server_test|shard_test|batch_test|zql_roundtrip_test|trace_test|metrics_test)$')

echo "== running the randomized soak (stress configuration) =="
(cd "$BUILD" && ctest --output-on-failure -C stress -L stress)

echo "ASan gate passed: no memory errors reported in $SUITES + batch_stress"
