/// \file zv_lint.h
/// \brief Project-invariant static analysis ("zv-lint") over src/.
///
/// The determinism contract — results byte-identical across ZV_THREADS,
/// ZV_SHARDS, batching, backends, and schedules — is enforced dynamically
/// by the identity suites, but a dynamic test only catches the paths it
/// happens to exercise. zv-lint closes the gap statically: it flags the
/// *sources* of nondeterminism and layering rot at the offending line, so
/// a raw clock read or an upward #include cannot merge in the first place.
///
/// The analysis is deliberately libclang-free: a comment/string-aware
/// line scanner plus an include-graph builder, linting these invariants:
///
///   raw-clock       steady_clock::now() / system_clock outside
///                   common/clock.{h,cc} — route through SteadyNow(),
///                   MsSince(), MsBetween(), or Clock.
///   raw-rand        rand()/srand()/std::random_device outside
///                   common/rng.h — use the deterministic zv::Rng.
///   unordered-iter  iteration over std::unordered_{map,set,...} without a
///                   `// zv-lint: order-independent` annotation; hash
///                   order is not part of the determinism contract.
///   manual-lock     bare .lock()/.unlock() calls — use a scoped guard
///                   (std::lock_guard, std::unique_lock, zv::ScopedUnlock)
///                   or annotate `// zv-lint: manual-lock`.
///   layering        an #include edge not in the layer DAG
///                   api → server → zql → {engine, tasks} →
///                   {sql, storage, roaring, algebra, viz} → common.
///   include-cycle   a cycle in the file-level include graph.
///
/// Suppression: a `// zv-lint: <tag>` comment on the offending line or on
/// the line directly above it. The tag is the rule id, except
/// unordered-iter which takes the semantic tag `order-independent`.
/// Accepted legacy sites live in a committed baseline (tools/
/// zv_lint_baseline.txt); baselined violations pass, anything new fails —
/// the gate is a ratchet, not a snapshot.

#ifndef ZV_TOOLS_ZV_LINT_H_
#define ZV_TOOLS_ZV_LINT_H_

#include <string>
#include <vector>

namespace zv::lint {

/// One input file, path repo-relative with forward slashes
/// (e.g. "src/zql/executor.cc").
struct SourceFile {
  std::string path;
  std::string content;
};

/// One finding. `key` is the baseline identity: rule + file + the
/// whitespace-normalized code of the offending line — stable across
/// unrelated edits that shift line numbers.
struct Violation {
  std::string rule;
  std::string file;
  int line = 0;  // 1-based
  std::string detail;
  std::string key;
};

/// A source line split into channels: `code` has comments and
/// string/char literal bodies blanked (delimiters kept), `comment` has
/// only comment text. Suppressions are read from `comment`, rules from
/// `code` — a rule name inside a string can never fire and a violation
/// inside a comment never counts.
struct ScannedLine {
  std::string code;
  std::string comment;
};

/// Splits a whole file; handles //, /*...*/ (multi-line), "..." with
/// escapes, '...', and R"delim(...)delim" raw strings.
std::vector<ScannedLine> ScanSource(const std::string& content);

/// Registered rule ids + one-line summaries (docs gate reads this table).
struct RuleInfo {
  const char* id;
  const char* summary;
};
const std::vector<RuleInfo>& Rules();

/// Layer rank lookup for a top-level directory under src/ ("zql", ...).
/// Returns false for directories not in the layer table.
bool KnownLayer(const std::string& dir);

/// True when a file in layer `from` may include a file in layer `to`.
bool LayerEdgeAllowed(const std::string& from, const std::string& to);

/// Per-file rules (raw-clock, raw-rand, unordered-iter, manual-lock).
/// `headers` may carry companion files (e.g. the matching .h of a .cc)
/// whose unordered-container declarations are visible to `f`.
std::vector<Violation> LintFile(const SourceFile& f,
                                const std::vector<SourceFile>& headers = {});

/// Whole-graph rules (layering, include-cycle) over every file at once.
std::vector<Violation> LintIncludeGraph(const std::vector<SourceFile>& files);

/// All rules over all files, companion headers resolved automatically;
/// results sorted by (file, line, rule).
std::vector<Violation> LintAll(const std::vector<SourceFile>& files);

/// Baseline = multiset of accepted violation keys (one line per key; '#'
/// comments and blank lines ignored).
struct Baseline {
  std::vector<std::string> keys;
};
Baseline ParseBaseline(const std::string& text);

/// Serializes violations into baseline format (sorted, deduplicated
/// keys with a header comment) — what --write-baseline emits.
std::string FormatBaseline(const std::vector<Violation>& violations);

/// Drops violations whose key appears in the baseline (each baseline
/// entry absolves any number of textually identical sites in its file).
/// Baseline keys that matched nothing are appended to *stale when given —
/// the ratchet's "this debt was paid, delete the entry" signal.
std::vector<Violation> ApplyBaseline(const std::vector<Violation>& violations,
                                     const Baseline& baseline,
                                     std::vector<std::string>* stale);

}  // namespace zv::lint

#endif  // ZV_TOOLS_ZV_LINT_H_
