/// \file zv_lint_main.cc
/// \brief CLI driver for the zv-lint static-analysis pass (registered as
/// the `zv_lint` ctest, label "lint").
///
/// Usage:
///   zv_lint <repo_root> [--baseline FILE] [--write-baseline FILE]
///           [--list-rules]
///
/// Lints every .h/.cc under <repo_root>/src. With --baseline, violations
/// whose keys appear in FILE are accepted (the ratchet); stale baseline
/// entries are reported as warnings. --write-baseline regenerates the
/// baseline from the current violations (use once, when adopting the
/// tool or after an intentional mass change). Exit: 0 clean, 1 new
/// violations, 2 usage/IO error.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/zv_lint.h"

namespace {

namespace fs = std::filesystem;

bool ReadFile(const fs::path& p, std::string* out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root;
  std::string baseline_path;
  std::string write_baseline_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const zv::lint::RuleInfo& r : zv::lint::Rules()) {
        std::cout << r.id << "\t" << r.summary << "\n";
      }
      return 0;
    }
    if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--write-baseline" && i + 1 < argc) {
      write_baseline_path = argv[++i];
    } else if (!arg.empty() && arg[0] != '-' && root.empty()) {
      root = arg;
    } else {
      std::cerr << "usage: zv_lint <repo_root> [--baseline FILE] "
                   "[--write-baseline FILE] [--list-rules]\n";
      return 2;
    }
  }
  if (root.empty()) {
    std::cerr << "zv_lint: missing repo root argument\n";
    return 2;
  }
  const fs::path src_dir = fs::path(root) / "src";
  if (!fs::is_directory(src_dir)) {
    std::cerr << "zv_lint: " << src_dir.string() << " is not a directory\n";
    return 2;
  }

  std::vector<zv::lint::SourceFile> files;
  for (const fs::directory_entry& e :
       fs::recursive_directory_iterator(src_dir)) {
    if (!e.is_regular_file()) continue;
    const std::string ext = e.path().extension().string();
    if (ext != ".h" && ext != ".cc") continue;
    zv::lint::SourceFile f;
    f.path = fs::relative(e.path(), root).generic_string();
    if (!ReadFile(e.path(), &f.content)) {
      std::cerr << "zv_lint: cannot read " << e.path().string() << "\n";
      return 2;
    }
    files.push_back(std::move(f));
  }
  std::sort(files.begin(), files.end(),
            [](const zv::lint::SourceFile& a, const zv::lint::SourceFile& b) {
              return a.path < b.path;
            });

  std::vector<zv::lint::Violation> violations = zv::lint::LintAll(files);

  if (!write_baseline_path.empty()) {
    std::ofstream out(write_baseline_path, std::ios::binary);
    out << zv::lint::FormatBaseline(violations);
    std::cout << "zv_lint: wrote " << write_baseline_path << " ("
              << violations.size() << " accepted sites)\n";
    return 0;
  }

  zv::lint::Baseline baseline;
  if (!baseline_path.empty()) {
    std::string text;
    if (!ReadFile(baseline_path, &text)) {
      std::cerr << "zv_lint: cannot read baseline " << baseline_path << "\n";
      return 2;
    }
    baseline = zv::lint::ParseBaseline(text);
  }
  std::vector<std::string> stale;
  const std::vector<zv::lint::Violation> fresh =
      zv::lint::ApplyBaseline(violations, baseline, &stale);

  for (const std::string& k : stale) {
    std::cerr << "zv_lint: stale baseline entry (site fixed — delete the "
                 "line): "
              << k << "\n";
  }
  for (const zv::lint::Violation& v : fresh) {
    std::cerr << v.file << ":" << v.line << ": [" << v.rule << "] "
              << v.detail << "\n";
  }
  if (!fresh.empty()) {
    std::cerr << "zv_lint: " << fresh.size() << " violation"
              << (fresh.size() == 1 ? "" : "s") << " over " << files.size()
              << " files (suppress inline with `// zv-lint: <tag>` only "
                 "when the invariant truly holds)\n";
    return 1;
  }
  std::cout << "zv_lint: clean (" << files.size() << " files, "
            << (baseline.keys.empty() ? "empty baseline"
                                      : std::to_string(baseline.keys.size()) +
                                            " baselined sites")
            << ")\n";
  return 0;
}
