#!/usr/bin/env bash
# Runs the Figure-7 benchmark harnesses and assembles their machine-readable
# records into BENCH_fig7.json — the perf trajectory future PRs diff against.
#
# Usage: tools/run_bench.sh [build_dir] [output.json]
#   build_dir   directory with the bench_fig7_* binaries (default: build)
#   output.json destination (default: BENCH_fig7.json in the repo root)
#
# Knobs (environment):
#   ZV_BENCH_SCALE   workload multiplier (default 1; benches document their
#                    paper-scale values)
#   ZV_THREADS       worker count for the parallel paths; the fig7_1 scoring
#                    section additionally sweeps 1 vs 4 itself
#   ZV_BENCH_ONLY    space-separated list of harness names to run
#                    (default: "bench_fig7_1 bench_fig7_2 bench_fig7_3
#                    bench_fig7_4 bench_fig7_5 bench_serve bench_distance
#                    bench_roaring")
#   ZV_SIMD          distance-kernel tier for the dispatched paths
#                    (bench_distance times scalar and avx2 side by side
#                    regardless; see docs/architecture.md "Kernel layer")
#   ZV_CACHE_MB / ZV_MAX_INFLIGHT / ZV_MAX_QUEUE  serving-layer knobs
#                    (bench_serve; see src/server/query_service.h)
#   ZV_BENCH_STRICT  1 = exit nonzero when any case regresses >15% against
#                    the committed baseline (default: warn only)

set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$ROOT/build}"
OUT="${2:-$ROOT/BENCH_fig7.json}"
BENCHES="${ZV_BENCH_ONLY:-bench_fig7_1 bench_fig7_2 bench_fig7_3 bench_fig7_4 bench_fig7_5 bench_serve bench_distance bench_roaring}"

echo "== zv-lint preflight =="
# Perf numbers from a tree that violates the determinism invariants are
# not worth recording; gate before spending bench minutes.
if [[ ! -x "$BUILD_DIR/zv_lint" ]]; then
  cmake --build "$BUILD_DIR" -j --target zv_lint > /dev/null
fi
"$BUILD_DIR/zv_lint" "$ROOT" --baseline "$ROOT/tools/zv_lint_baseline.txt"

LINES="$(mktemp)"
trap 'rm -f "$LINES"' EXIT

for bench in $BENCHES; do
  bin="$BUILD_DIR/$bench"
  if [[ ! -x "$bin" ]]; then
    echo "skipping $bench (not built at $bin)" >&2
    continue
  fi
  echo "== running $bench =="
  ZV_BENCH_JSON="$LINES" "$bin"
done

# Regression gate: diff the fresh records against the committed baseline
# *before* overwriting it. A case >15% slower than the baseline is reported;
# under ZV_BENCH_STRICT=1 that fails the run. Sub-5ms cases are skipped
# (timer noise dominates), as is the whole check when the baseline was
# recorded at a different ZV_BENCH_SCALE (the numbers aren't comparable).
check_regressions() {
  local old="$1" new="$2"
  if [[ ! -f "$old" ]]; then
    echo "no baseline at $old — skipping regression check"
    return 0
  fi
  local old_scale
  old_scale="$(sed -n 's/.*"scale": "\([^"]*\)".*/\1/p' "$old" | head -1)"
  if [[ "${old_scale:-1}" != "${ZV_BENCH_SCALE:-1}" ]]; then
    echo "baseline scale ${old_scale:-?} != current ${ZV_BENCH_SCALE:-1} — skipping regression check"
    return 0
  fi
  awk '
    match($0, /"figure":"[^"]*"/) {
      fig = substr($0, RSTART + 10, RLENGTH - 11)
      if (!match($0, /"case":"[^"]*"/)) next
      c = substr($0, RSTART + 8, RLENGTH - 9)
      if (!match($0, /"ms":[0-9.]+/)) next
      ms = substr($0, RSTART + 5, RLENGTH - 5) + 0
      key = fig "/" c
      if (FILENAME == ARGV[1]) { base[key] = ms } else { fresh[key] = ms }
    }
    END {
      bad = 0
      for (k in fresh) {
        if (!(k in base) || base[k] < 5) continue
        if (fresh[k] > base[k] * 1.15) {
          printf "REGRESSION %-55s %9.1f ms -> %9.1f ms (+%.0f%%)\n",
                 k, base[k], fresh[k], (fresh[k] / base[k] - 1) * 100
          bad++
        }
      }
      exit bad > 0 ? 1 : 0
    }
  ' "$old" "$new"
}

if ! check_regressions "$OUT" "$LINES"; then
  if [[ "${ZV_BENCH_STRICT:-0}" == "1" ]]; then
    echo "ZV_BENCH_STRICT=1: perf regressed >15% vs $OUT — failing" >&2
    exit 1
  fi
  echo "warning: perf regressed >15% vs committed baseline (set ZV_BENCH_STRICT=1 to fail)" >&2
fi

# Trace-overhead gate: bench_serve's trace_overhead record asserts traced
# warm p50 <= untraced p50 * 1.05 + 0.05 ms (tracing is supposed to be a
# near-free observer). "pass":"no" warns; under ZV_BENCH_STRICT=1 it fails.
if grep '"case":"trace_overhead"' "$LINES" | grep -q '"pass":"no"'; then
  if [[ "${ZV_BENCH_STRICT:-0}" == "1" ]]; then
    echo "ZV_BENCH_STRICT=1: tracing overhead exceeded budget (see trace_overhead record) — failing" >&2
    exit 1
  fi
  echo "warning: tracing overhead exceeded budget (set ZV_BENCH_STRICT=1 to fail)" >&2
fi

# Kernel-layer floors: bench_distance's simd_speedup_n512 record asserts
# vectorized L2 >= 2x over scalar (AVX2 hosts only — absent otherwise),
# and bench_roaring's gallop_speedup asserts galloping intersection >= 2x
# over the linear walk on skewed inputs. "pass":"no" warns; under
# ZV_BENCH_STRICT=1 it fails, like the trace-overhead budget above.
for floor in simd_speedup_n512 gallop_speedup; do
  if grep "\"case\":\"$floor\"" "$LINES" | grep -q '"pass":"no"'; then
    if [[ "${ZV_BENCH_STRICT:-0}" == "1" ]]; then
      echo "ZV_BENCH_STRICT=1: $floor below its 2x floor (see the $floor record) — failing" >&2
      exit 1
    fi
    echo "warning: $floor below its 2x floor (set ZV_BENCH_STRICT=1 to fail)" >&2
  fi
done

# Wrap the JSON lines into one array, with run metadata up front.
{
  printf '{\n'
  printf '  "scale": "%s",\n' "${ZV_BENCH_SCALE:-1}"
  printf '  "threads": "%s",\n' "${ZV_THREADS:-default}"
  printf '  "records": [\n'
  sed -e 's/^/    /' -e '$!s/$/,/' "$LINES"
  printf '  ]\n'
  printf '}\n'
} > "$OUT"

echo "wrote $(grep -c '"figure"' "$OUT") records to $OUT"
