#!/usr/bin/env bash
# Runs the Figure-7 benchmark harnesses and assembles their machine-readable
# records into BENCH_fig7.json — the perf trajectory future PRs diff against.
#
# Usage: tools/run_bench.sh [build_dir] [output.json]
#   build_dir   directory with the bench_fig7_* binaries (default: build)
#   output.json destination (default: BENCH_fig7.json in the repo root)
#
# Knobs (environment):
#   ZV_BENCH_SCALE   workload multiplier (default 1; benches document their
#                    paper-scale values)
#   ZV_THREADS       worker count for the parallel paths; the fig7_1 scoring
#                    section additionally sweeps 1 vs 4 itself
#   ZV_BENCH_ONLY    space-separated list of harness names to run
#                    (default: "bench_fig7_1 bench_fig7_2 bench_fig7_3
#                    bench_fig7_4 bench_fig7_5 bench_serve")
#   ZV_CACHE_MB / ZV_MAX_INFLIGHT / ZV_MAX_QUEUE  serving-layer knobs
#                    (bench_serve; see src/server/query_service.h)

set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$ROOT/build}"
OUT="${2:-$ROOT/BENCH_fig7.json}"
BENCHES="${ZV_BENCH_ONLY:-bench_fig7_1 bench_fig7_2 bench_fig7_3 bench_fig7_4 bench_fig7_5 bench_serve}"

LINES="$(mktemp)"
trap 'rm -f "$LINES"' EXIT

for bench in $BENCHES; do
  bin="$BUILD_DIR/$bench"
  if [[ ! -x "$bin" ]]; then
    echo "skipping $bench (not built at $bin)" >&2
    continue
  fi
  echo "== running $bench =="
  ZV_BENCH_JSON="$LINES" "$bin"
done

# Wrap the JSON lines into one array, with run metadata up front.
{
  printf '{\n'
  printf '  "scale": "%s",\n' "${ZV_BENCH_SCALE:-1}"
  printf '  "threads": "%s",\n' "${ZV_THREADS:-default}"
  printf '  "records": [\n'
  sed -e 's/^/    /' -e '$!s/$/,/' "$LINES"
  printf '  ]\n'
  printf '}\n'
} > "$OUT"

echo "wrote $(grep -c '"figure"' "$OUT") records to $OUT"
