#!/usr/bin/env bash
# Docs drift gate (run by ctest): every primitive, mechanism, distance
# metric, and chart type the code registers must be mentioned in
# docs/zql_reference.md, and every field of the wire protocol's
# request/response structs must be mentioned in docs/api_reference.md.
# The lists are extracted from the sources, not hardcoded, so adding e.g.
# a new metric or a new protocol field without documenting it fails CI.
#
# Usage: tools/check_docs.sh [repo_root]

set -u

ROOT="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
DOC="$ROOT/docs/zql_reference.md"
API_DOC="$ROOT/docs/api_reference.md"

fail=0
missing() {
  echo "check_docs: '$1' ($2) is not documented in docs/zql_reference.md" >&2
  fail=1
}

if [[ ! -f "$DOC" ]]; then
  echo "check_docs: missing $DOC" >&2
  exit 1
fi
if [[ ! -f "$API_DOC" ]]; then
  echo "check_docs: missing $API_DOC" >&2
  exit 1
fi

# Functional primitives the ZQL engine dispatches (T, D — the ScoreOp
# layer) and the parser's representative call (R).
exec_prims="$(grep -oE 'e\.func == "[A-Z]+"' "$ROOT/src/zql/operators.cc" |
                grep -oE '"[A-Z]+"' | tr -d '"' | sort -u)"
[[ -n "$exec_prims" ]] || {
  echo "check_docs: no primitives extracted from operators.cc" >&2; exit 1; }
prims="$exec_prims
R"
for p in $prims; do
  # Match the primitive as a call, e.g. `T(f1)` / `D(f1, f2)` / `R(3, ...`.
  grep -qE "\\b$p\\(" "$DOC" || missing "$p" "functional primitive"
done

# Mechanisms from the Process-cell parser.
mechs="$(grep -oE 'StartsWith\(rhs, "arg[a-z]+"\)' "$ROOT/src/zql/parser.cc" |
           grep -oE 'arg[a-z]+' | sort -u)"
[[ -n "$mechs" ]] || { echo "check_docs: no mechanisms extracted" >&2; exit 1; }
for m in $mechs; do
  grep -q "$m" "$DOC" || missing "$m" "mechanism"
done

# Distance metric spellings accepted by DistanceMetricFromString.
metrics="$(sed -n '/DistanceMetricFromString/,/^}/p' \
             "$ROOT/src/tasks/distance.cc" |
           grep -oE 'lower == "[a-z0-9]+"' | grep -oE '"[a-z0-9]+"' |
           tr -d '"' | sort -u)"
[[ -n "$metrics" ]] || { echo "check_docs: no metrics extracted" >&2; exit 1; }
for m in $metrics; do
  grep -qE "\\b$m\\b" "$DOC" || missing "$m" "distance metric"
done

# Chart type spellings accepted by ChartTypeFromString.
charts="$(sed -n '/ChartTypeFromString/,/^}/p' "$ROOT/src/viz/viz_spec.cc" |
          grep -oE 'lower == "[a-z]+"' | grep -oE '"[a-z]+"' |
          tr -d '"' | sort -u)"
[[ -n "$charts" ]] || { echo "check_docs: no chart types extracted" >&2; exit 1; }
for c in $charts; do
  grep -qE "\\b$c\\b" "$DOC" || missing "$c" "chart type"
done

# Wire protocol fields: every member of every struct defined in
# src/api/protocol.h (they are all wire messages) must appear as a word in
# docs/api_reference.md. The struct list is NOT hardcoded — a new message
# type added to the header is covered automatically.
proto_fields="$(awk '
  /^struct [A-Za-z_][A-Za-z0-9_]* \{/ {
    in_struct = 1; next
  }
  in_struct && /^\};/ { in_struct = 0; next }
  in_struct {
    # A member line ends in ";" (optionally followed by a trailing ///<
    # comment) and is not itself a comment line or a method declaration.
    if ($0 ~ /;[[:space:]]*(\/\/.*)?$/ && $0 !~ /^[[:space:]]*\/\// &&
        $0 !~ /\(/) {
      line = $0
      sub(/[[:space:]]*=[^;]*;.*/, "", line)  # strip initializer
      sub(/;.*/, "", line)                     # strip bare semicolon
      n = split(line, parts, /[[:space:]]+/)
      if (n > 0 && parts[n] ~ /^[A-Za-z_][A-Za-z0-9_]*$/) print parts[n]
    }
  }' "$ROOT/src/api/protocol.h" | sort -u)"
[[ -n "$proto_fields" ]] || {
  echo "check_docs: no protocol fields extracted from src/api/protocol.h" >&2
  exit 1
}
for f in $proto_fields; do
  if ! grep -qE "\\b$f\\b" "$API_DOC"; then
    echo "check_docs: protocol field '$f' is not documented in" \
         "docs/api_reference.md" >&2
    fail=1
  fi
done

# Wire stats fields: ZqlStats travels on the wire through EncodeStats, whose
# keys are Set() literals rather than protocol.h struct members — extract
# them too, so adding a stats field (e.g. a new per-stage timing) without
# documenting it fails the same way.
stats_fields="$(sed -n '/^Json EncodeStats/,/^}/p' "$ROOT/src/api/protocol.cc" |
                grep -oE 'Set\("[a-z_]+"' | grep -oE '"[a-z_]+"' |
                tr -d '"' | sort -u)"
[[ -n "$stats_fields" ]] || {
  echo "check_docs: no stats fields extracted from EncodeStats" >&2
  exit 1
}
for f in $stats_fields; do
  if ! grep -qE "\\b$f\\b" "$API_DOC"; then
    echo "check_docs: wire stats field '$f' is not documented in" \
         "docs/api_reference.md" >&2
    fail=1
  fi
done

# zv-lint rule ids: the Rules() registry in tools/zv_lint.cc is the
# source of truth; every rule id must appear (as `rule-id`, in backticks)
# in docs/architecture.md so the Static analysis section cannot drift.
ARCH_DOC="$ROOT/docs/architecture.md"
lint_rules="$(sed -n '/std::vector<RuleInfo>& Rules()/,/^}/p' \
                "$ROOT/tools/zv_lint.cc" |
              grep -oE '\{"[a-z-]+"' | grep -oE '[a-z-]+' | sort -u)"
[[ -n "$lint_rules" ]] || {
  echo "check_docs: no lint rules extracted from tools/zv_lint.cc" >&2
  exit 1
}
for r in $lint_rules; do
  if ! grep -qE "\`$r\`" "$ARCH_DOC"; then
    echo "check_docs: zv-lint rule '$r' is not documented in" \
         "docs/architecture.md" >&2
    fail=1
  fi
done

# Kernel variants: simd::LevelName in src/tasks/simd.cc is the canonical
# spelling of each dispatch tier (what EXPLAIN, simd_width docs, and bench
# records use); every variant must appear in backticks in the Kernel layer
# section of docs/architecture.md.
kernel_variants="$(sed -n '/const char\* LevelName/,/^}/p' \
                     "$ROOT/src/tasks/simd.cc" |
                   grep -oE 'return "[a-z0-9]+"' | grep -oE '"[a-z0-9]+"' |
                   tr -d '"' | sort -u)"
[[ -n "$kernel_variants" ]] || {
  echo "check_docs: no kernel variants extracted from src/tasks/simd.cc" >&2
  exit 1
}
for k in $kernel_variants; do
  if ! grep -qE "\`$k\`" "$ARCH_DOC"; then
    echo "check_docs: kernel variant '$k' is not documented in" \
         "docs/architecture.md" >&2
    fail=1
  fi
done

# Roaring container types: ContainerTypeName in src/roaring/container.cc
# enumerates the adaptive representations; every type must appear in
# backticks in docs/architecture.md so the container state machine cannot
# gain an encoding silently.
container_types="$(sed -n '/const char\* ContainerTypeName/,/^}/p' \
                     "$ROOT/src/roaring/container.cc" |
                   grep -oE 'return "[a-z]+"' | grep -oE '"[a-z]+"' |
                   tr -d '"' | sort -u)"
[[ -n "$container_types" ]] || {
  echo "check_docs: no container types extracted from container.cc" >&2
  exit 1
}
for c in $container_types; do
  if ! grep -qE "\`$c\`" "$ARCH_DOC"; then
    echo "check_docs: container type '$c' is not documented in" \
         "docs/architecture.md" >&2
    fail=1
  fi
done

if [[ "$fail" -ne 0 ]]; then
  exit 1
fi
echo "check_docs: OK (primitives: $(echo $prims | tr '\n' ' ')| mechanisms:" \
     "$(echo $mechs | tr '\n' ' ')| metrics: $(echo $metrics | tr '\n' ' ')|" \
     "chart types: $(echo $charts | tr '\n' ' ')| protocol fields:" \
     "$(echo $proto_fields | tr '\n' ' ')| stats fields:" \
     "$(echo $stats_fields | tr '\n' ' ')| lint rules:" \
     "$(echo $lint_rules | tr '\n' ' ')| kernel variants:" \
     "$(echo $kernel_variants | tr '\n' ' ')| container types:" \
     "$(echo $container_types | tr '\n' ' '))"
